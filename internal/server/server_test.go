package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"skydiver"
)

// newTestServer builds a server over one small registered dataset plus an
// httptest frontend. Chaos endpoints are enabled.
func newTestServer(t *testing.T, cfg Config, n int) (*Server, *httptest.Server, *skydiver.Dataset) {
	t.Helper()
	ds, err := skydiver.Generate(skydiver.Anticorrelated, n, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Open("default", ds); err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	cfg.Chaos = true
	cfg.Logf = t.Logf
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, ds
}

// get fetches a URL and decodes the JSON body into out (when non-nil).
func get(t *testing.T, client *http.Client, url string, out any) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, body, err)
		}
	}
	return resp
}

func TestServerQueryTaxonomy(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, 3000)
	c := ts.Client()

	// 200 full.
	var full QueryResponse
	resp := get(t, c, ts.URL+"/query?k=4&t=32&seed=1", &full)
	if resp.StatusCode != http.StatusOK || full.Status != ClassFull || len(full.Indexes) != 4 {
		t.Fatalf("full query: status=%d body=%+v", resp.StatusCode, full)
	}
	if full.Partial || full.Degraded {
		t.Fatalf("full query flagged partial/degraded: %+v", full)
	}

	// Identical query again: fingerprint cache must serve it.
	var cached QueryResponse
	get(t, c, ts.URL+"/query?k=4&t=32&seed=1", &cached)
	if !cached.FingerprintCached {
		t.Errorf("second identical query not served from fingerprint cache")
	}

	// k=1: a one-element selection has an infinite min pairwise distance,
	// which encoding/json refuses to marshal — the objective field must be
	// omitted, not the whole body (this used to be an empty 200 response).
	var one QueryResponse
	resp = get(t, c, ts.URL+"/query?k=1&t=32&seed=1", &one)
	if resp.StatusCode != http.StatusOK || one.Status != ClassFull || len(one.Indexes) != 1 {
		t.Fatalf("k=1 query: status=%d body=%+v", resp.StatusCode, one)
	}
	if one.Objective != nil {
		t.Errorf("k=1 objective = %v, want omitted (non-finite)", *one.Objective)
	}

	// 400: malformed k, bad algo, bad timeout, K beyond the skyline.
	for _, u := range []string{
		"/query?k=zero", "/query?k=-1", "/query?algo=quantum",
		"/query?timeout=yesterday", "/query?budget=pages=-4", "/query?k=100000",
	} {
		var eb errorBody
		resp := get(t, c, ts.URL+u, &eb)
		if resp.StatusCode != http.StatusBadRequest || eb.Class != ClassBadRequest {
			t.Errorf("%s: status=%d class=%q, want 400 bad_request", u, resp.StatusCode, eb.Class)
		}
	}

	// 404 unknown dataset.
	var eb errorBody
	resp = get(t, c, ts.URL+"/query?dataset=ghost", &eb)
	if resp.StatusCode != http.StatusNotFound || eb.Class != ClassNotFound {
		t.Fatalf("unknown dataset: status=%d class=%q", resp.StatusCode, eb.Class)
	}

	// 200 partial via a microscopic deadline: valid prefix of the full
	// answer (anytime contract), possibly empty.
	var part QueryResponse
	resp = get(t, c, ts.URL+"/query?k=4&t=32&seed=1&timeout=1ns&nocache=1", &part)
	if resp.StatusCode != http.StatusOK || part.Status != ClassPartial || !part.Partial {
		t.Fatalf("deadline query: status=%d body=%+v", resp.StatusCode, part)
	}
	if part.Reason != "deadline" {
		t.Errorf("deadline partial reason = %q", part.Reason)
	}
	for i, idx := range part.Indexes {
		if idx != full.Indexes[i] {
			t.Errorf("partial prefix diverges at %d: %v vs %v", i, part.Indexes, full.Indexes)
		}
	}

	// 200 partial via budget exhaustion.
	var bpart QueryResponse
	resp = get(t, c, ts.URL+"/query?k=4&t=32&seed=1&nocache=1&budget=pages=1", &bpart)
	if resp.StatusCode != http.StatusOK || bpart.Status != ClassPartial || bpart.Reason != "budget" {
		t.Fatalf("budget query: status=%d body=%+v", resp.StatusCode, bpart)
	}

	// 200 degraded: same starved budget, shedding allowed — the ladder must
	// serve an answer with a machine-readable reason.
	var deg QueryResponse
	resp = get(t, c, ts.URL+"/query?k=4&t=32&seed=1&nocache=1&budget=pages=1&degraded=1", &deg)
	if resp.StatusCode != http.StatusOK || deg.Status != ClassDegraded || !deg.Degraded || deg.Reason == "" {
		t.Fatalf("degraded query: status=%d body=%+v", resp.StatusCode, deg)
	}
}

// TestServerPanicRecovery hits the chaos panic endpoint and checks the
// process converts it into a 500 and keeps serving.
func TestServerPanicRecovery(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{}, 500)
	c := ts.Client()
	for i := 0; i < 3; i++ {
		var eb errorBody
		resp := get(t, c, ts.URL+"/boom", &eb)
		if resp.StatusCode != http.StatusInternalServerError || eb.Class != ClassPanic {
			t.Fatalf("boom %d: status=%d class=%q", i, resp.StatusCode, eb.Class)
		}
	}
	if got := srv.panics.Load(); got != 3 {
		t.Errorf("panic counter = %d, want 3", got)
	}
	// Still alive and serving real queries.
	var qr QueryResponse
	if resp := get(t, c, ts.URL+"/query?k=3&t=16", &qr); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after panics: %d", resp.StatusCode)
	}
}

// TestServerShedReconciliation drives an overloaded dataset with concurrent
// cold queries and asserts the acceptance identity: client-observed 429s
// carry Retry-After and match the server's shed counter, and every response
// class the client saw reconciles with /stats.
func TestServerShedReconciliation(t *testing.T) {
	_, ts, ds := newTestServer(t, Config{}, 20000)
	if err := ds.SetAdmissionPolicy(skydiver.AdmissionPolicy{MaxInFlight: 1}); err != nil {
		t.Fatal(err)
	}
	c := ts.Client()

	const waves = 48
	var mu sync.Mutex
	tally := map[string]int64{}
	var wg sync.WaitGroup
	for i := 0; i < waves; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Get(fmt.Sprintf("%s/query?k=3&t=32&seed=1&nocache=1", ts.URL))
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var class string
			switch resp.StatusCode {
			case http.StatusOK:
				var qr QueryResponse
				if err := json.Unmarshal(body, &qr); err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
				class = qr.Status
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("429 without Retry-After")
				}
				var eb errorBody
				_ = json.Unmarshal(body, &eb)
				class = eb.Class
			default:
				t.Errorf("query %d: unexpected status %d: %s", i, resp.StatusCode, body)
				return
			}
			mu.Lock()
			tally[class]++
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	var stats struct {
		Server struct {
			Responses map[string]int64 `json:"responses"`
		} `json:"server"`
		Datasets []struct {
			Admission skydiver.AdmissionStats `json:"admission"`
		} `json:"datasets"`
	}
	get(t, c, ts.URL+"/stats", &stats)
	for class, n := range tally {
		if got := stats.Server.Responses[class]; got != n {
			t.Errorf("class %q: server counted %d, client observed %d", class, got, n)
		}
	}
	if tally[ClassShed] == 0 {
		t.Log("note: no sheds this run (scheduler served all queries serially)")
	} else if len(stats.Datasets) == 0 || stats.Datasets[0].Admission.ShedQueueFull != tally[ClassShed] {
		t.Errorf("dataset shed counter %+v does not match client 429s %d",
			stats.Datasets, tally[ClassShed])
	}
	var total int64
	for _, n := range tally {
		total += n
	}
	if total != waves {
		t.Errorf("client tally sums to %d, want %d", total, waves)
	}
}

// TestServerTenantAdmission verifies the per-tenant layer sheds one tenant's
// flood without touching another tenant's traffic.
func TestServerTenantAdmission(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		TenantPolicy: skydiver.AdmissionPolicy{MaxInFlight: 1},
	}, 20000)
	c := ts.Client()

	var shed429, ok200 int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Get(ts.URL + "/query?k=3&t=32&nocache=1&tenant=noisy")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				shed429++
			case http.StatusOK:
				ok200++
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	// A different tenant is untouched by the noisy tenant's limiter.
	var qr QueryResponse
	if resp := get(t, c, ts.URL+"/query?k=3&t=32&tenant=quiet", &qr); resp.StatusCode != http.StatusOK {
		t.Fatalf("quiet tenant: status %d", resp.StatusCode)
	}
	var stats struct {
		Tenants map[string]skydiver.AdmissionStats `json:"tenants"`
	}
	get(t, c, ts.URL+"/stats", &stats)
	noisy := stats.Tenants["noisy"]
	if noisy.ShedQueueFull != shed429 {
		t.Errorf("noisy tenant sheds: server %d, client %d", noisy.ShedQueueFull, shed429)
	}
	if quiet := stats.Tenants["quiet"]; quiet.Admitted != 1 || quiet.ShedQueueFull != 0 {
		t.Errorf("quiet tenant stats: %+v", quiet)
	}
}

// TestServerDrain pins the graceful-shutdown sequence: BeginDrain flips
// /readyz unready and sheds new queries with 503 while /healthz stays live,
// and Drain completes within the deadline, closing every dataset.
func TestServerDrain(t *testing.T) {
	srv, ts, ds := newTestServer(t, Config{}, 3000)
	c := ts.Client()

	var ready struct {
		Ready bool `json:"ready"`
	}
	if resp := get(t, c, ts.URL+"/readyz", &ready); resp.StatusCode != http.StatusOK || !ready.Ready {
		t.Fatalf("readyz before drain: %d %+v", resp.StatusCode, ready)
	}

	// Park a slow query in flight (storage latency via chaos faults makes
	// the cold pass take a while), then start draining under it.
	faultsURL := ts.URL + "/datasets/default/faults?policy=rate%3D0.8%2Clatency%3D3ms%2Cseed%3D7"
	req, _ := http.NewRequest(http.MethodPost, faultsURL, nil)
	if resp, err := c.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("installing faults: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	slow := make(chan *http.Response, 1)
	go func() {
		resp, err := c.Get(ts.URL + "/query?k=3&t=32&nocache=1&timeout=400ms")
		if err != nil {
			t.Error(err)
			close(slow)
			return
		}
		slow <- resp
	}()
	time.Sleep(50 * time.Millisecond) // let the slow query enter the gate

	srv.BeginDrain()
	var eb errorBody
	if resp := get(t, c, ts.URL+"/query?k=3", &eb); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: status %d, want 503", resp.StatusCode)
	}
	if resp := get(t, c, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", resp.StatusCode)
	}
	if resp := get(t, c, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if resp, ok := <-slow; ok {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("in-flight query finished with %d", resp.StatusCode)
		}
	}
	if _, err := ds.Skyline(); !errors.Is(err, skydiver.ErrDatasetClosed) {
		t.Fatalf("dataset not closed after Drain: %v", err)
	}
}

// TestServerEvictEndpoint exercises the DELETE lifecycle endpoint under
// concurrent traffic.
func TestServerEvictEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, 3000)
	c := ts.Client()

	// Register a second dataset over HTTP.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/datasets?name=extra&gen=ind&n=500&d=3", nil)
	resp, err := c.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("open extra: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	// Duplicate open → 409.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/datasets?name=extra&gen=ind&n=500&d=3", nil)
	resp, err = c.Do(req)
	if err != nil || resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate open: %v %v", err, resp.Status)
	}
	resp.Body.Close()

	var infos []DatasetInfo
	get(t, c, ts.URL+"/datasets", &infos)
	if len(infos) != 2 {
		t.Fatalf("datasets = %+v, want 2", infos)
	}

	// Evict under concurrent queries.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Get(ts.URL + "/query?dataset=extra&k=2&t=16")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable &&
				resp.StatusCode != http.StatusNotFound {
				t.Errorf("query during eviction: %d", resp.StatusCode)
			}
		}()
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/datasets/extra?drain=5s", nil)
	resp, err = c.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("evict: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	wg.Wait()

	var eb errorBody
	if resp := get(t, c, ts.URL+"/query?dataset=extra&k=2", &eb); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query after eviction: %d, want 404", resp.StatusCode)
	}
}

// TestServerReadyzBreakerOpen flips a dataset's breaker open with a fault
// storm and checks /readyz goes unready until recovery.
func TestServerReadyzBreakerOpen(t *testing.T) {
	_, ts, ds := newTestServer(t, Config{}, 3000)
	c := ts.Client()
	if err := ds.SetBreakerPolicy(skydiver.BreakerPolicy{
		Window: 16, MinSamples: 4, TripRatio: 0.5, Cooldown: 200 * time.Millisecond, Probes: 2,
	}); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost,
		ts.URL+"/datasets/default/faults?policy=rate%3D1.0%2Cseed%3D3", nil)
	if resp, err := c.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("installing faults: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}
	// Drive cold reads until the breaker trips.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := c.Get(ts.URL + "/query?k=3&t=16&nocache=1")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if bs, ok := ds.BreakerStats(); ok && bs.State == skydiver.BreakerOpen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never tripped under a rate=1.0 fault storm")
		}
	}
	if resp := get(t, c, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with open breaker: %d, want 503", resp.StatusCode)
	}
}

// TestServerMutationEndpoints exercises POST /datasets/{name}/points and
// DELETE /datasets/{name}/points/{row}: queries keep working across
// mutations, the fingerprint cache keeps serving (migrated, not rebuilt),
// the epoch advances, and /stats reports the mutation counters.
func TestServerMutationEndpoints(t *testing.T) {
	_, ts, ds := newTestServer(t, Config{}, 2000)
	c := ts.Client()

	// Warm the skyline and the fingerprint cache.
	var warm QueryResponse
	if resp := get(t, c, ts.URL+"/query?k=3&t=32&seed=1", &warm); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query: status %d", resp.StatusCode)
	}

	// Insert a point that dominates everything: it must become the skyline.
	var ins struct {
		Row   int    `json:"row"`
		Epoch uint64 `json:"epoch"`
		Live  int    `json:"live"`
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/datasets/default/points?p=0,0,0", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ins); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ins.Row != 2000 || ins.Epoch != 1 || ins.Live != 2001 {
		t.Fatalf("insert: status=%d body=%+v", resp.StatusCode, ins)
	}
	sky, err := ds.Skyline()
	if err != nil {
		t.Fatal(err)
	}
	if len(sky) != 1 || sky[0] != ins.Row {
		t.Fatalf("post-insert skyline %v, want [%d]", sky, ins.Row)
	}

	// Delete it again: the old skyline points must come back, and a cached
	// query must still be served (the fingerprint was migrated twice).
	req, _ = http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/datasets/default/points/%d", ts.URL, ins.Row), nil)
	resp, err = c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	var after QueryResponse
	if resp := get(t, c, ts.URL+"/query?k=3&t=32&seed=1", &after); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-delete query: status %d", resp.StatusCode)
	}
	if !after.FingerprintCached {
		t.Error("post-delete query was not served from the migrated fingerprint")
	}
	if len(after.Indexes) != len(warm.Indexes) {
		t.Fatalf("post-delete selection %v, want %v", after.Indexes, warm.Indexes)
	}
	for i := range warm.Indexes {
		if after.Indexes[i] != warm.Indexes[i] {
			t.Fatalf("post-delete selection %v, want %v", after.Indexes, warm.Indexes)
		}
	}

	// Errors: double delete and unknown row are 404s, malformed input 400s,
	// unknown dataset 404.
	for _, tc := range []struct {
		method, url string
		status      int
		class       string
	}{
		{http.MethodDelete, "/datasets/default/points/2000", http.StatusNotFound, ClassNotFound},
		{http.MethodDelete, "/datasets/default/points/99999", http.StatusNotFound, ClassNotFound},
		{http.MethodDelete, "/datasets/default/points/zero", http.StatusBadRequest, ClassBadRequest},
		{http.MethodDelete, "/datasets/ghost/points/0", http.StatusNotFound, ClassNotFound},
		{http.MethodPost, "/datasets/default/points", http.StatusBadRequest, ClassBadRequest},
		{http.MethodPost, "/datasets/default/points?p=1,2", http.StatusBadRequest, ClassBadRequest},
		{http.MethodPost, "/datasets/default/points?p=a,b,c", http.StatusBadRequest, ClassBadRequest},
		{http.MethodPost, "/datasets/ghost/points?p=1,2,3", http.StatusNotFound, ClassNotFound},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.url, nil)
		resp, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.url, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status || eb.Class != tc.class {
			t.Errorf("%s %s: status=%d class=%q, want %d %s", tc.method, tc.url, resp.StatusCode, eb.Class, tc.status, tc.class)
		}
	}

	// /stats reports the mutation counters.
	var stats struct {
		Datasets []struct {
			Name      string                 `json:"name"`
			Mutations skydiver.MutationStats `json:"mutations"`
		} `json:"datasets"`
	}
	get(t, c, ts.URL+"/stats", &stats)
	if len(stats.Datasets) != 1 {
		t.Fatalf("stats datasets: %+v", stats.Datasets)
	}
	ms := stats.Datasets[0].Mutations
	if ms.Inserts != 1 || ms.Deletes != 1 || ms.Epoch != 2 || ms.Live != 2000 {
		t.Errorf("mutation stats = %+v, want 1 insert, 1 delete, epoch 2, 2000 live", ms)
	}
}
