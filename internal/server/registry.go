// Package server implements skyserved's fault-tolerant HTTP serving tier: a
// lifecycle-managed multi-dataset registry, a middleware stack (panic
// recovery, deadline propagation, per-tenant admission, error-taxonomy→HTTP
// mapping), health/readiness/stats endpoints, and graceful drain. The
// package holds all the logic; cmd/skyserved is a thin flag-parsing shell
// around it so the whole tier is testable in-process with httptest.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"skydiver"
)

// Registry lifecycle sentinels. Classify with errors.Is.
var (
	// ErrUnknownDataset marks a request naming a dataset the registry does
	// not hold. Maps to HTTP 404.
	ErrUnknownDataset = errors.New("server: unknown dataset")
	// ErrDatasetDraining marks a request arriving while the named dataset is
	// being evicted: no new queries are admitted, in-flight ones finish.
	// Maps to HTTP 503.
	ErrDatasetDraining = errors.New("server: dataset draining")
	// ErrDatasetExists marks an Open of a name already registered. Maps to
	// HTTP 409.
	ErrDatasetExists = errors.New("server: dataset already registered")
	// ErrRegistryClosed marks any registry operation after CloseAll.
	ErrRegistryClosed = errors.New("server: registry closed")
)

// entry is one registered dataset with its refcount and drain state.
type entry struct {
	name     string
	ds       *skydiver.Dataset
	refs     int
	draining bool
	drained  chan struct{} // closed exactly once, when draining && refs == 0
	finished bool          // drained already closed
}

// Registry is a lifecycle-managed collection of named datasets. Queries
// check a dataset out with Acquire (a refcount) and return it with
// Handle.Release; Evict stops new acquisitions, waits for the refcount to
// drain, then removes the entry and closes the dataset — so eviction can
// never race an in-flight query into a torn read of released state. All
// methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	closed  bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Open registers ds under name. The registry owns the dataset from here on:
// it will be Closed when evicted (or at CloseAll).
func (r *Registry) Open(name string, ds *skydiver.Dataset) error {
	if name == "" {
		return errors.New("server: empty dataset name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrRegistryClosed
	}
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	r.entries[name] = &entry{name: name, ds: ds, drained: make(chan struct{})}
	return nil
}

// Handle is a checked-out reference to a registered dataset. Release it when
// the query is done; Release is idempotent.
type Handle struct {
	r    *Registry
	e    *entry
	once sync.Once
}

// Dataset returns the referenced dataset.
func (h *Handle) Dataset() *skydiver.Dataset { return h.e.ds }

// Release returns the reference. When the entry is draining and this was the
// last reference, the evictor is unblocked.
func (h *Handle) Release() {
	h.once.Do(func() {
		h.r.mu.Lock()
		h.e.refs--
		h.r.maybeFinishLocked(h.e)
		h.r.mu.Unlock()
	})
}

// maybeFinishLocked closes the entry's drained channel when the last
// reference of a draining entry has been released. r.mu must be held.
func (r *Registry) maybeFinishLocked(e *entry) {
	if e.draining && e.refs == 0 && !e.finished {
		e.finished = true
		close(e.drained)
	}
}

// Acquire checks out the named dataset. Fails with ErrUnknownDataset or, if
// eviction has started, ErrDatasetDraining.
func (r *Registry) Acquire(name string) (*Handle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrRegistryClosed
	}
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	if e.draining {
		return nil, fmt.Errorf("%w: %q", ErrDatasetDraining, name)
	}
	e.refs++
	return &Handle{r: r, e: e}, nil
}

// Evict removes the named dataset: it immediately stops new Acquires
// (ErrDatasetDraining), waits for in-flight references to drain, then
// unregisters the entry and Closes the dataset. If ctx expires first the
// entry stays registered in the draining state — queries are still refused,
// the dataset is not yet closed, and a later Evict may resume the wait.
func (r *Registry) Evict(ctx context.Context, name string) error {
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	e.draining = true
	r.maybeFinishLocked(e)
	r.mu.Unlock()

	select {
	case <-e.drained:
	default:
		select {
		case <-e.drained:
		case <-ctx.Done():
			return fmt.Errorf("server: evicting %q: %d queries still in flight: %w", name, r.refs(name), ctx.Err())
		}
	}

	r.mu.Lock()
	// Concurrent evictors both reach here; only the one that still finds the
	// entry in the map performs the removal and close.
	if cur, ok := r.entries[name]; ok && cur == e {
		delete(r.entries, name)
	}
	r.mu.Unlock()
	return e.ds.Close()
}

// refs returns the current refcount of name (0 if unknown).
func (r *Registry) refs(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		return e.refs
	}
	return 0
}

// DatasetInfo describes one registry entry for /datasets and /stats.
type DatasetInfo struct {
	Name     string `json:"name"`
	Points   int    `json:"points"`
	Dims     int    `json:"dims"`
	Refs     int    `json:"in_flight"`
	Draining bool   `json:"draining"`
}

// List snapshots the registry entries, sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DatasetInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, DatasetInfo{
			Name:     e.name,
			Points:   e.ds.Len(),
			Dims:     e.ds.Dims(),
			Refs:     e.refs,
			Draining: e.draining,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// CloseAll evicts every dataset (bounded by ctx) and closes the registry for
// further use. It returns the first eviction error, but attempts them all.
func (r *Registry) CloseAll(ctx context.Context) error {
	r.mu.Lock()
	r.closed = true
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	r.mu.Unlock()
	var first error
	for _, name := range names {
		if err := r.Evict(ctx, name); err != nil && first == nil {
			first = err
		}
	}
	return first
}
