// middleware.go is the serving tier's robustness stack: the response-class
// taxonomy that maps the library's error sentinels onto HTTP statuses
// (mirroring the CLI's exit codes), panic recovery that turns a handler
// panic into a 500 without killing the process, per-request deadline
// propagation from ?timeout= into the library's context polls, per-tenant
// admission, and the drain gate that sheds new work during shutdown.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"skydiver"
	"skydiver/internal/admission"
	"skydiver/internal/httpx"
)

// Response classes. Every response the server writes is counted under
// exactly one of these, so /stats reconciles 1:1 with what clients observe.
// The HTTP taxonomy mirrors the CLI exit codes: 0→full, 3→partial,
// 4→shed(429), 5→degraded, 1→internal/unavailable, 2→bad-request.
const (
	ClassFull        = "full"        // 200, complete result
	ClassPartial     = "partial"     // 200, valid anytime prefix + reason
	ClassDegraded    = "degraded"    // 200, degradation-ladder answer + reason
	ClassShed        = "shed"        // 429 + Retry-After, no work done
	ClassUnavailable = "unavailable" // 503 + Retry-After (breaker open, storage sick, draining)
	ClassNotFound    = "not_found"   // 404, unknown dataset or route
	ClassBadRequest  = "bad_request" // 400, malformed parameters
	ClassConflict    = "conflict"    // 409, dataset already exists
	ClassInternal    = "internal"    // 500, bug or unclassified failure
	ClassPanic       = "panic"       // 500, handler panic converted by recovery
	ClassCancelled   = "cancelled"   // client went away mid-query; nothing deliverable
)

// errorBody is the JSON shape of every non-200 response.
type errorBody struct {
	Error        string `json:"error"`
	Class        string `json:"error_class"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// classify maps an error from the query path to its HTTP status and response
// class. The mapping is the server-side twin of the CLI exit-code taxonomy.
func classify(err error) (status int, class string) {
	switch {
	case errors.Is(err, skydiver.ErrOverloaded):
		return http.StatusTooManyRequests, ClassShed
	case errors.Is(err, ErrUnknownDataset), errors.Is(err, skydiver.ErrNoSuchPoint):
		return http.StatusNotFound, ClassNotFound
	case errors.Is(err, ErrDatasetExists):
		return http.StatusConflict, ClassConflict
	case errors.Is(err, ErrDatasetDraining), errors.Is(err, ErrRegistryClosed),
		errors.Is(err, skydiver.ErrDatasetClosed),
		errors.Is(err, skydiver.ErrCircuitOpen),
		errors.Is(err, skydiver.ErrTransientFault),
		errors.Is(err, skydiver.ErrPermanentFault),
		errors.Is(err, skydiver.ErrRemoteUnavailable):
		return http.StatusServiceUnavailable, ClassUnavailable
	case errors.Is(err, skydiver.ErrInvalidOptions):
		return http.StatusBadRequest, ClassBadRequest
	default:
		return http.StatusInternalServerError, ClassInternal
	}
}

// counters tallies responses by class. All methods are safe for concurrent
// use.
type counters struct {
	mu sync.Mutex
	m  map[string]int64
}

func newCounters() *counters { return &counters{m: make(map[string]int64)} }

func (c *counters) inc(class string) {
	c.mu.Lock()
	c.m[class]++
	c.mu.Unlock()
}

func (c *counters) snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// recoverPanics converts a handler panic into a 500 response (when the
// header has not been sent yet) and keeps the process alive. The panic
// count is surfaced in /stats; the stack goes to the server's logger. The
// mechanics live in httpx.Recover, shared with the cluster shard worker.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return httpx.Recover(next, httpx.RecoverOptions{
		Logf: s.logf,
		OnPanic: func(any) {
			s.panics.Add(1)
			s.responses.inc(ClassPanic)
		},
		Body: func(p any) any {
			return errorBody{Error: fmt.Sprintf("internal error: %v", p), Class: ClassPanic}
		},
	})
}

// requestContext derives the query context: the request's own context (which
// the net/http server cancels on client disconnect) plus an optional
// ?timeout= deadline, clamped to the server's MaxTimeout ceiling. The
// returned cancel must always be called.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	ctx, cancel, err := httpx.Timeout(r, s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %s", skydiver.ErrInvalidOptions, err)
	}
	return ctx, cancel, nil
}

// tenantTable lazily builds one admission limiter per tenant from a shared
// policy template — the per-tenant layer above each dataset's own admission
// control. A zero template disables the layer.
type tenantTable struct {
	mu       sync.Mutex
	policy   admission.Policy
	limiters map[string]*admission.Limiter
}

func newTenantTable(p admission.Policy) *tenantTable {
	return &tenantTable{policy: p, limiters: make(map[string]*admission.Limiter)}
}

// enabled reports whether per-tenant admission is configured.
func (t *tenantTable) enabled() bool { return t.policy != (admission.Policy{}) }

// limiter returns (creating if needed) the named tenant's limiter, or nil
// when the layer is disabled.
func (t *tenantTable) limiter(tenant string) *admission.Limiter {
	if !t.enabled() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	lim, ok := t.limiters[tenant]
	if !ok {
		lim, _ = admission.New(t.policy) // policy validated at server construction
		t.limiters[tenant] = lim
	}
	return lim
}

// snapshot returns per-tenant admission stats.
func (t *tenantTable) snapshot() map[string]admission.Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]admission.Stats, len(t.limiters))
	for name, lim := range t.limiters {
		out[name] = lim.Stats()
	}
	return out
}

// writeJSON writes a JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, body any) {
	httpx.WriteJSON(w, status, body)
}

// writeError writes the taxonomy-mapped error response and counts its class.
// 429 and 503 carry a Retry-After header so well-behaved clients back off.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status, class := classify(err)
	body := errorBody{Error: err.Error(), Class: class}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		ra := s.cfg.RetryAfter
		w.Header().Set("Retry-After", strconv.Itoa(int((ra+time.Second-1)/time.Second)))
		body.RetryAfterMS = ra.Milliseconds()
	}
	s.responses.inc(class)
	writeJSON(w, status, body)
}
