package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// postJSON posts a JSON body and decodes the response into out (when
// non-nil), mirroring the get helper.
func postJSON(t *testing.T, client *http.Client, url, body string, out any) *http.Response {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding: %v", url, err)
		}
	}
	return resp
}

// TestServerBatchEndpoint drives POST /datasets/{name}/points:batch through
// an insert batch and a delete batch, checks the amortized epoch accounting
// (one bump per batch, not per point) and that cached queries survive the
// composed fingerprint migration.
func TestServerBatchEndpoint(t *testing.T) {
	_, ts, ds := newTestServer(t, Config{}, 2000)
	c := ts.Client()

	var warm QueryResponse
	if resp := get(t, c, ts.URL+"/query?k=3&t=32&seed=1", &warm); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query: status %d", resp.StatusCode)
	}

	var ins struct {
		Rows  []int  `json:"rows"`
		Epoch uint64 `json:"epoch"`
		Live  int    `json:"live"`
	}
	resp := postJSON(t, c, ts.URL+"/datasets/default/points:batch",
		`{"insert":[[0.5,0.5,0.5],[0.2,0.9,0.4],[0.9,0.1,0.8]]}`, &ins)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert batch: status %d", resp.StatusCode)
	}
	if fmt.Sprint(ins.Rows) != "[2000 2001 2002]" || ins.Epoch != 1 || ins.Live != 2003 {
		t.Fatalf("insert batch response = %+v", ins)
	}

	var del struct {
		Deleted int    `json:"deleted"`
		Epoch   uint64 `json:"epoch"`
		Live    int    `json:"live"`
	}
	resp = postJSON(t, c, ts.URL+"/datasets/default/points:batch",
		`{"delete":[2000,2001,2002]}`, &del)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete batch: status %d", resp.StatusCode)
	}
	if del.Deleted != 3 || del.Epoch != 2 || del.Live != 2000 {
		t.Fatalf("delete batch response = %+v", del)
	}

	// The two migrations composed back to the original dataset: the warm
	// query is still answered from a (twice-migrated) fingerprint.
	var after QueryResponse
	get(t, c, ts.URL+"/query?k=3&t=32&seed=1", &after)
	if !after.FingerprintCached {
		t.Error("post-batch query was not served from the migrated fingerprint")
	}
	if fmt.Sprint(after.Indexes) != fmt.Sprint(warm.Indexes) {
		t.Errorf("post-batch selection %v, want %v", after.Indexes, warm.Indexes)
	}

	if ms := ds.MutationStats(); ms.Inserts != 3 || ms.Deletes != 3 || ms.Epoch != 2 {
		t.Errorf("mutation stats = %+v, want 3 inserts, 3 deletes, epoch 2", ms)
	}

	// Validation is all-or-nothing: every rejected body leaves the epoch
	// untouched.
	for _, tc := range []struct {
		url, body string
		status    int
		class     string
	}{
		{"/datasets/default/points:batch", `{not json`, http.StatusBadRequest, ClassBadRequest},
		{"/datasets/default/points:batch", `{}`, http.StatusBadRequest, ClassBadRequest},
		{"/datasets/default/points:batch", `{"insert":[[1,2,3]],"delete":[0]}`, http.StatusBadRequest, ClassBadRequest},
		{"/datasets/default/points:batch", `{"insert":[[1,2,3],[1,2]]}`, http.StatusBadRequest, ClassBadRequest},
		{"/datasets/default/points:batch", `{"delete":[0,0]}`, http.StatusNotFound, ClassNotFound},
		{"/datasets/default/points:batch", `{"delete":[99999]}`, http.StatusNotFound, ClassNotFound},
		{"/datasets/ghost/points:batch", `{"delete":[0]}`, http.StatusNotFound, ClassNotFound},
	} {
		var eb errorBody
		resp := postJSON(t, c, ts.URL+tc.url, tc.body, &eb)
		if resp.StatusCode != tc.status || eb.Class != tc.class {
			t.Errorf("POST %s %s: status=%d class=%q, want %d %s",
				tc.url, tc.body, resp.StatusCode, eb.Class, tc.status, tc.class)
		}
	}
	if got := ds.Epoch(); got != 2 {
		t.Errorf("rejected batches bumped the epoch to %d", got)
	}
}

// TestServerShardedQuery exercises ?shards= on /query: sharded answers are
// identical to the unsharded one, and malformed values are 400s.
func TestServerShardedQuery(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, 2000)
	c := ts.Client()

	var want QueryResponse
	if resp := get(t, c, ts.URL+"/query?k=4&t=32&seed=1", &want); resp.StatusCode != http.StatusOK {
		t.Fatalf("unsharded query: status %d", resp.StatusCode)
	}
	for _, shards := range []int{1, 2, 3, 4} {
		var got QueryResponse
		url := fmt.Sprintf("%s/query?k=4&t=32&seed=1&nocache=1&shards=%d", ts.URL, shards)
		if resp := get(t, c, url, &got); resp.StatusCode != http.StatusOK {
			t.Fatalf("shards=%d: status %d", shards, resp.StatusCode)
		}
		if fmt.Sprint(got.Indexes) != fmt.Sprint(want.Indexes) {
			t.Errorf("shards=%d: indexes %v, want %v", shards, got.Indexes, want.Indexes)
		}
	}
	for _, raw := range []string{"-1", "abc", "1.5"} {
		var eb errorBody
		resp := get(t, c, ts.URL+"/query?k=4&shards="+raw, &eb)
		if resp.StatusCode != http.StatusBadRequest || eb.Class != ClassBadRequest {
			t.Errorf("shards=%s: status=%d class=%q, want 400 %s", raw, resp.StatusCode, eb.Class, ClassBadRequest)
		}
	}
}
