package server

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// doJSON issues a bodyless request with an arbitrary method and decodes the
// JSON response into out when non-nil, mirroring the get helper.
func doJSON(t *testing.T, client *http.Client, method, url string, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("%s %s: reading body: %v", method, url, err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, body, err)
		}
	}
	return resp
}

// TestServerSnapshotWarmStart walks the full snapshot lifecycle over HTTP:
// open a file-backed dataset, persist its index, evict it, reopen it with
// ?snapshot=1, and verify via /stats that the first query ran a zero-decode
// warm start.
func TestServerSnapshotWarmStart(t *testing.T) {
	dir := t.TempDir()
	_, ts, _ := newTestServer(t, Config{SnapshotDir: dir}, 500)
	c := ts.Client()

	openURL := ts.URL + "/datasets?name=snap&gen=ant&n=1500&d=3&seed=7&storage=file"
	if resp := doJSON(t, c, http.MethodPost, openURL, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("open: %s", resp.Status)
	}
	// A query before the snapshot so the index (and its decoded nodes) exist.
	if resp := get(t, c, ts.URL+"/query?dataset=snap&k=4&seed=3", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold query: %s", resp.Status)
	}

	var snapInfo struct {
		Dataset  string `json:"dataset"`
		Snapshot string `json:"snapshot"`
		Bytes    int64  `json:"bytes"`
	}
	if resp := doJSON(t, c, http.MethodPut, ts.URL+"/datasets/snap/snapshot", &snapInfo); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %s", resp.Status)
	}
	if snapInfo.Bytes == 0 {
		t.Fatal("snapshot reported zero bytes")
	}
	if _, err := os.Stat(filepath.Join(dir, "snap.snap")); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}

	if resp := doJSON(t, c, http.MethodDelete, ts.URL+"/datasets/snap", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("evict: %s", resp.Status)
	}

	// Reopen warm: same generator parameters, index from the snapshot.
	if resp := doJSON(t, c, http.MethodPost, openURL+"&snapshot=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm open: %s", resp.Status)
	}
	if resp := get(t, c, ts.URL+"/query?dataset=snap&k=4&seed=3", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query: %s", resp.Status)
	}

	var stats struct {
		Datasets []struct {
			Name        string `json:"name"`
			DecodeCache struct {
				Hits    int64
				Decodes int64
			} `json:"decode_cache"`
		} `json:"datasets"`
	}
	get(t, c, ts.URL+"/stats", &stats)
	found := false
	for _, d := range stats.Datasets {
		if d.Name != "snap" {
			continue
		}
		found = true
		if d.DecodeCache.Decodes != 0 {
			t.Errorf("warm start decoded %d nodes, want 0", d.DecodeCache.Decodes)
		}
		if d.DecodeCache.Hits == 0 {
			t.Error("warm start served no nodes from the warm set")
		}
	}
	if !found {
		t.Error("dataset snap missing from /stats")
	}
}

// TestServerSnapshotRejections covers the failure surface: snapshots without
// a configured directory, path-walking dataset names, and warm opens with no
// snapshot on disk.
func TestServerSnapshotRejections(t *testing.T) {
	// No SnapshotDir: both sides of the feature are 400s.
	_, tsOff, _ := newTestServer(t, Config{}, 300)
	c := tsOff.Client()
	if resp := doJSON(t, c, http.MethodPut, tsOff.URL+"/datasets/default/snapshot", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("snapshot without dir: %s, want 400", resp.Status)
	}
	if resp := doJSON(t, c, http.MethodPost, tsOff.URL+"/datasets?name=w&gen=ind&n=200&d=3&snapshot=1", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("warm open without dir: %s, want 400", resp.Status)
	}

	dir := t.TempDir()
	_, ts, _ := newTestServer(t, Config{SnapshotDir: dir}, 300)
	c = ts.Client()
	// Names that could escape the snapshot directory must never reach the
	// filesystem: either the mux cleans/rejects the path (404/405) or the
	// handler's name validation does (400). A directory audit below proves
	// nothing was written either way.
	for _, name := range []string{"..", "a%2Fb", "a%5Cb", "."} {
		resp := doJSON(t, c, http.MethodPut, ts.URL+"/datasets/"+name+"/snapshot", nil)
		if resp.StatusCode == http.StatusOK {
			t.Errorf("name %q: snapshot accepted, want rejection", name)
		}
	}
	if entries, err := os.ReadDir(dir); err != nil {
		t.Fatal(err)
	} else if len(entries) != 0 {
		t.Errorf("hostile names left files behind: %v", entries)
	}
	// Unknown dataset → 404 from the registry.
	if resp := doJSON(t, c, http.MethodPut, ts.URL+"/datasets/ghost/snapshot", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown dataset: %s, want 404", resp.Status)
	}
	// Warm open with no snapshot on disk → 400, and the dataset is NOT left
	// registered half-open.
	if resp := doJSON(t, c, http.MethodPost, ts.URL+"/datasets?name=cold&gen=ind&n=200&d=3&snapshot=1", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("warm open without snapshot: %s, want 400", resp.Status)
	}
	if resp := get(t, c, ts.URL+"/query?dataset=cold&k=2", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("failed warm open left dataset registered: %s", resp.Status)
	}
	// Bad storage parameter on open → 400.
	if resp := doJSON(t, c, http.MethodPost, ts.URL+"/datasets?name=bad&gen=ind&n=200&d=3&storage=tape", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("storage=tape: %s, want 400", resp.Status)
	}
}
