// Package dispersion implements the k-dispersion solvers of SkyDiver's
// selection phase (Section 4.2): the greedy 2-approximation heuristic
// SelectDiverseSet (Figure 6) over an arbitrary metric oracle, plus exact
// brute-force solvers for the max-min (k-MMDP) and max-sum (k-MSDP)
// dispersion problems used by the Brute-Force baseline and the Figure 2
// illustration.
package dispersion

import (
	"context"
	"fmt"
	"math"
)

// cancelCheckStride bounds how many distance evaluations may pass between
// two context checks, so cancellation latency stays below one greedy round
// even on huge skylines.
const cancelCheckStride = 4096

// DistFunc is a pairwise distance oracle over items 0..m-1. SelectDiverseSet
// requires it to be a metric (the triangle inequality underlies the
// 2-approximation guarantee); the callers plug in the estimated Jaccard
// distance of MinHash signatures, the Hamming distance of LSH bit vectors,
// or the exact Jaccard distance via R-tree range counting.
type DistFunc func(i, j int) float64

// Objective selects the dispersion objective.
type Objective int

// Dispersion objectives.
const (
	// MaxMin maximizes the minimum pairwise distance (k-MMDP). SkyDiver uses
	// it because greedy gives a 2-approximation (versus 4 for max-sum).
	MaxMin Objective = iota
	// MaxSum maximizes the sum of pairwise distances (k-MSDP).
	MaxSum
)

// String names the objective.
func (o Objective) String() string {
	if o == MaxSum {
		return "max-sum"
	}
	return "max-min"
}

// SelectDiverseSet is the greedy heuristic of Figure 6. It seeds the result
// with the item of maximum score (the skyline point with the highest
// domination score), then repeatedly adds the item maximizing its minimum
// distance to the chosen set, breaking ties by score. It returns the chosen
// item indexes in selection order.
//
// The minimum distance of every unselected item to the chosen set is
// maintained incrementally, so the oracle is invoked O(k·m) times. The
// result is a 2-approximation of the optimal k-MMDP value (Lemma 4).
func SelectDiverseSet(m, k int, dist DistFunc, score []float64) ([]int, error) {
	return SelectDiverseSetCtx(context.Background(), m, k, dist, score)
}

// SelectDiverseSetCtx is SelectDiverseSet with cancellation. The greedy loop
// is anytime: every completed round extends a valid diverse prefix, so on
// cancellation the items selected so far are returned together with the
// context's error — callers keep the partial answer instead of losing the
// whole run. The context is checked at least once per greedy round and every
// cancelCheckStride distance evaluations within a round.
func SelectDiverseSetCtx(ctx context.Context, m, k int, dist DistFunc, score []float64) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("dispersion: non-positive k %d", k)
	}
	if k > m {
		return nil, fmt.Errorf("dispersion: k %d exceeds item count %d", k, m)
	}
	if score != nil && len(score) != m {
		return nil, fmt.Errorf("dispersion: score vector has %d entries for %d items", len(score), m)
	}
	if err := ctx.Err(); err != nil {
		return []int{}, err
	}
	sc := func(i int) float64 {
		if score == nil {
			return 0
		}
		return score[i]
	}
	// Seed: maximum score (Figure 6, line 3).
	first := 0
	for i := 1; i < m; i++ {
		if sc(i) > sc(first) {
			first = i
		}
	}
	selected := make([]int, 0, k)
	selected = append(selected, first)
	inSet := make([]bool, m)
	inSet[first] = true
	minDist := make([]float64, m)
	evals := 0
	for i := 0; i < m; i++ {
		if !inSet[i] {
			minDist[i] = dist(i, first)
			if evals++; evals%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return selected, err
				}
			}
		}
	}
	for len(selected) < k {
		if err := ctx.Err(); err != nil {
			return selected, err
		}
		best := -1
		for i := 0; i < m; i++ {
			if inSet[i] {
				continue
			}
			if best == -1 || minDist[i] > minDist[best] ||
				(minDist[i] == minDist[best] && sc(i) > sc(best)) {
				best = i
			}
		}
		selected = append(selected, best)
		inSet[best] = true
		for i := 0; i < m; i++ {
			if !inSet[i] {
				if d := dist(i, best); d < minDist[i] {
					minDist[i] = d
				}
				if evals++; evals%cancelCheckStride == 0 {
					if err := ctx.Err(); err != nil {
						return selected, err
					}
				}
			}
		}
	}
	return selected, nil
}

// SelectDiverseSetFarthestSeed is the classic 2-approximation heuristic of
// Ravi, Rosenkrantz and Tayi (cited as [28]): it seeds the result with the
// two points of maximum pairwise distance — an O(m²) scan the paper's
// variant avoids — then grows it greedily like SelectDiverseSet. It exists
// for the seeding ablation; SkyDiver itself uses SelectDiverseSet.
func SelectDiverseSetFarthestSeed(m, k int, dist DistFunc) ([]int, error) {
	return SelectDiverseSetFarthestSeedCtx(context.Background(), m, k, dist)
}

// SelectDiverseSetFarthestSeedCtx is SelectDiverseSetFarthestSeed with
// cancellation, checked every cancelCheckStride distance evaluations —
// including inside the O(m²) farthest-pair seeding scan, which on a large
// skyline dwarfs the greedy rounds and previously could not be interrupted
// at all. Cancellation during seeding returns an empty selection with the
// context's error; after seeding, the prefix selected so far (anytime, like
// SelectDiverseSetCtx).
func SelectDiverseSetFarthestSeedCtx(ctx context.Context, m, k int, dist DistFunc) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("dispersion: non-positive k %d", k)
	}
	if k > m {
		return nil, fmt.Errorf("dispersion: k %d exceeds item count %d", k, m)
	}
	if err := ctx.Err(); err != nil {
		return []int{}, err
	}
	if k == 1 || m == 1 {
		return []int{0}, nil
	}
	bi, bj := 0, 1
	bd := math.Inf(-1)
	evals := 0
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if d := dist(i, j); d > bd {
				bi, bj, bd = i, j, d
			}
			if evals++; evals%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return []int{}, err
				}
			}
		}
	}
	selected := []int{bi, bj}
	inSet := make([]bool, m)
	inSet[bi], inSet[bj] = true, true
	minDist := make([]float64, m)
	for i := 0; i < m; i++ {
		if !inSet[i] {
			minDist[i] = math.Min(dist(i, bi), dist(i, bj))
			if evals += 2; evals%cancelCheckStride < 2 {
				if err := ctx.Err(); err != nil {
					return selected, err
				}
			}
		}
	}
	for len(selected) < k {
		if err := ctx.Err(); err != nil {
			return selected, err
		}
		best := -1
		for i := 0; i < m; i++ {
			if inSet[i] {
				continue
			}
			if best == -1 || minDist[i] > minDist[best] {
				best = i
			}
		}
		selected = append(selected, best)
		inSet[best] = true
		for i := 0; i < m; i++ {
			if !inSet[i] {
				if d := dist(i, best); d < minDist[i] {
					minDist[i] = d
				}
				if evals++; evals%cancelCheckStride == 0 {
					if err := ctx.Err(); err != nil {
						return selected, err
					}
				}
			}
		}
	}
	return selected, nil
}

// MinPairwise returns the minimum pairwise distance within the set — the
// k-MMDP objective value and the "diversity" quality metric of Figures 12
// and 13.
func MinPairwise(set []int, dist DistFunc) float64 {
	if len(set) < 2 {
		return math.Inf(1)
	}
	best := math.Inf(1)
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if d := dist(set[i], set[j]); d < best {
				best = d
			}
		}
	}
	return best
}

// SumPairwise returns the sum of pairwise distances within the set — the
// k-MSDP objective value.
func SumPairwise(set []int, dist DistFunc) float64 {
	total := 0.0
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			total += dist(set[i], set[j])
		}
	}
	return total
}

// BruteForce exhaustively enumerates all C(m, k) subsets and returns the one
// optimizing the chosen objective, together with its objective value. This
// is the Brute-Force baseline of Section 3.2; it is exponential in k and
// only usable for small skylines.
func BruteForce(m, k int, dist DistFunc, obj Objective) ([]int, float64, error) {
	return BruteForceCtx(context.Background(), m, k, dist, obj)
}

// BruteForceCtx is BruteForce with cancellation, checked every
// cancelCheckStride evaluated subsets. On cancellation it returns the best
// subset found so far (anytime, but without the exhaustive-optimality
// guarantee) together with the context's error.
func BruteForceCtx(ctx context.Context, m, k int, dist DistFunc, obj Objective) ([]int, float64, error) {
	if k < 1 || k > m {
		return nil, 0, fmt.Errorf("dispersion: invalid k %d for %d items", k, m)
	}
	objective := MinPairwise
	if obj == MaxSum {
		objective = SumPairwise
	}
	var best []int
	bestVal := math.Inf(-1)
	subset := make([]int, k)
	evaluated := 0
	var ctxErr error
	var recurse func(start, depth int)
	recurse = func(start, depth int) {
		if ctxErr != nil {
			return
		}
		if depth == k {
			if v := objective(subset, dist); v > bestVal {
				bestVal = v
				best = append(best[:0], subset...)
			}
			if evaluated++; evaluated%cancelCheckStride == 0 {
				ctxErr = ctx.Err()
			}
			return
		}
		// Leave room for the remaining k-depth-1 items.
		for i := start; i <= m-(k-depth); i++ {
			subset[depth] = i
			recurse(i+1, depth+1)
		}
	}
	recurse(0, 0)
	out := make([]int, len(best))
	copy(out, best)
	return out, bestVal, ctxErr
}

// GreedyMaxSum is the standard greedy heuristic for k-MSDP: seed with the
// globally farthest pair, then repeatedly add the item with the largest sum
// of distances to the chosen set. Used by the Figure 2 comparison of the two
// dispersion flavors.
func GreedyMaxSum(m, k int, dist DistFunc) ([]int, error) {
	return GreedyMaxSumCtx(context.Background(), m, k, dist)
}

// GreedyMaxSumCtx is GreedyMaxSum with cancellation, checked every
// cancelCheckStride distance evaluations — the O(m²) farthest-pair seeding
// scan included. Cancellation during seeding returns an empty selection;
// later, the anytime prefix selected so far, in both cases alongside the
// context's error.
func GreedyMaxSumCtx(ctx context.Context, m, k int, dist DistFunc) ([]int, error) {
	if k < 1 || k > m {
		return nil, fmt.Errorf("dispersion: invalid k %d for %d items", k, m)
	}
	if err := ctx.Err(); err != nil {
		return []int{}, err
	}
	if k == 1 || m == 1 {
		return []int{0}, nil
	}
	bi, bj := 0, 1
	bd := math.Inf(-1)
	evals := 0
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if d := dist(i, j); d > bd {
				bi, bj, bd = i, j, d
			}
			if evals++; evals%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return []int{}, err
				}
			}
		}
	}
	selected := []int{bi, bj}
	inSet := make([]bool, m)
	inSet[bi], inSet[bj] = true, true
	sumDist := make([]float64, m)
	for i := 0; i < m; i++ {
		if !inSet[i] {
			sumDist[i] = dist(i, bi) + dist(i, bj)
			if evals += 2; evals%cancelCheckStride < 2 {
				if err := ctx.Err(); err != nil {
					return selected, err
				}
			}
		}
	}
	for len(selected) < k {
		if err := ctx.Err(); err != nil {
			return selected, err
		}
		best := -1
		for i := 0; i < m; i++ {
			if inSet[i] {
				continue
			}
			if best == -1 || sumDist[i] > sumDist[best] {
				best = i
			}
		}
		selected = append(selected, best)
		inSet[best] = true
		for i := 0; i < m; i++ {
			if !inSet[i] {
				sumDist[i] += dist(i, best)
				if evals++; evals%cancelCheckStride == 0 {
					if err := ctx.Err(); err != nil {
						return selected, err
					}
				}
			}
		}
	}
	return selected, nil
}
