package dispersion

import (
	"math/rand"
	"testing"
)

func TestFarthestSeedValidation(t *testing.T) {
	d := euclid([][2]float64{{0, 0}, {1, 1}})
	if _, err := SelectDiverseSetFarthestSeed(2, 0, d); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := SelectDiverseSetFarthestSeed(2, 3, d); err == nil {
		t.Error("expected error for k>m")
	}
	one, err := SelectDiverseSetFarthestSeed(3, 1, d)
	if err != nil || len(one) != 1 {
		t.Error("k=1 broken")
	}
}

func TestFarthestSeedIsFarthestPair(t *testing.T) {
	pts := [][2]float64{{0, 0}, {3, 0}, {10, 0}, {4, 4}}
	got, err := SelectDiverseSetFarthestSeed(4, 2, euclid(pts))
	if err != nil {
		t.Fatal(err)
	}
	if !(got[0] == 0 && got[1] == 2) {
		t.Errorf("seed pair = %v, want [0 2]", got)
	}
}

// TestFarthestSeed2Approximation: the classic variant also satisfies the
// 2-approximation bound.
func TestFarthestSeed2Approximation(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		m := 6 + r.Intn(6)
		k := 2 + r.Intn(3)
		pts := make([][2]float64, m)
		for i := range pts {
			pts[i] = [2]float64{r.Float64() * 10, r.Float64() * 10}
		}
		d := euclid(pts)
		_, opt, err := BruteForce(m, k, d, MaxMin)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := SelectDiverseSetFarthestSeed(m, k, d)
		if err != nil {
			t.Fatal(err)
		}
		if got := MinPairwise(sel, d); got < opt/2-1e-9 {
			t.Fatalf("trial %d: classic greedy %v < OPT/2 = %v", trial, got, opt/2)
		}
	}
}

func TestFarthestSeedNoDuplicates(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := make([][2]float64, 30)
	for i := range pts {
		pts[i] = [2]float64{r.Float64(), r.Float64()}
	}
	sel, err := SelectDiverseSetFarthestSeed(30, 10, euclid(pts))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, s := range sel {
		if seen[s] {
			t.Fatal("duplicate selection")
		}
		seen[s] = true
	}
}
