package dispersion

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// euclid builds a DistFunc over 2-D points.
func euclid(pts [][2]float64) DistFunc {
	return func(i, j int) float64 {
		dx := pts[i][0] - pts[j][0]
		dy := pts[i][1] - pts[j][1]
		return math.Sqrt(dx*dx + dy*dy)
	}
}

func TestObjectiveString(t *testing.T) {
	if MaxMin.String() != "max-min" || MaxSum.String() != "max-sum" {
		t.Error("Objective.String mismatch")
	}
}

func TestSelectDiverseSetValidation(t *testing.T) {
	d := euclid([][2]float64{{0, 0}, {1, 1}})
	if _, err := SelectDiverseSet(2, 0, d, nil); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := SelectDiverseSet(2, 3, d, nil); err == nil {
		t.Error("expected error for k>m")
	}
	if _, err := SelectDiverseSet(2, 2, d, []float64{1}); err == nil {
		t.Error("expected error for short score vector")
	}
}

func TestSelectDiverseSetSeedsMaxScore(t *testing.T) {
	pts := [][2]float64{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	score := []float64{1, 9, 3, 2}
	got, err := SelectDiverseSet(4, 1, euclid(pts), score)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Errorf("seed = %d, want max-score item 1", got[0])
	}
	// Without scores the seed is item 0.
	got, _ = SelectDiverseSet(4, 1, euclid(pts), nil)
	if got[0] != 0 {
		t.Errorf("unscored seed = %d, want 0", got[0])
	}
}

func TestSelectDiverseSetLine(t *testing.T) {
	// Points on a line at 0, 1, 9, 10. Seed = max score at 0; the farthest
	// point is 10; then 9 vs 1: min-dist of 1 is 1, of 9 is 1 — tie broken by
	// score, which favors 9.
	pts := [][2]float64{{0, 0}, {1, 0}, {9, 0}, {10, 0}}
	score := []float64{5, 1, 2, 1}
	got, err := SelectDiverseSet(4, 3, euclid(pts), score)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selection = %v, want %v", got, want)
		}
	}
}

func TestSelectDiverseSetTieBreakByScore(t *testing.T) {
	// Equidistant candidates; higher score must win.
	pts := [][2]float64{{0, 0}, {2, 0}, {1, 1}, {1, -1}}
	score := []float64{0, 0, 1, 5}
	got, err := SelectDiverseSet(4, 3, euclid(pts), score)
	if err != nil {
		t.Fatal(err)
	}
	// Seed: item 3 (max score). Farthest from (1,-1): (0,0) d=sqrt(2)? No:
	// distances from 3: 0->sqrt(2), 1->sqrt(2), 2->2. So item 2 second.
	if got[0] != 3 || got[1] != 2 {
		t.Fatalf("selection = %v", got)
	}
	// Third: 0 and 1 both have minDist sqrt(2); equal scores 0,0 — first wins.
	if got[2] != 0 {
		t.Fatalf("selection = %v", got)
	}
}

func TestMinSumPairwise(t *testing.T) {
	pts := [][2]float64{{0, 0}, {3, 0}, {0, 4}}
	d := euclid(pts)
	if got := MinPairwise([]int{0, 1, 2}, d); got != 3 {
		t.Errorf("MinPairwise = %v, want 3", got)
	}
	if got := SumPairwise([]int{0, 1, 2}, d); got != 12 {
		t.Errorf("SumPairwise = %v, want 12", got)
	}
	if !math.IsInf(MinPairwise([]int{0}, d), 1) {
		t.Error("singleton MinPairwise must be +inf")
	}
	if SumPairwise([]int{0}, d) != 0 {
		t.Error("singleton SumPairwise must be 0")
	}
}

func TestBruteForceSmall(t *testing.T) {
	// 4 points on a line; best 2-MMDP pair is the endpoints.
	pts := [][2]float64{{0, 0}, {1, 0}, {2, 0}, {10, 0}}
	d := euclid(pts)
	set, val, err := BruteForce(4, 2, d, MaxMin)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(set)
	if set[0] != 0 || set[1] != 3 || val != 10 {
		t.Errorf("BruteForce = %v (%v)", set, val)
	}
	if _, _, err := BruteForce(4, 0, d, MaxMin); err == nil {
		t.Error("expected error for k=0")
	}
	if _, _, err := BruteForce(4, 5, d, MaxMin); err == nil {
		t.Error("expected error for k>m")
	}
}

// TestBruteForceMSDPvsMMDP reproduces the Figure 2 phenomenon: on a
// configuration with two close points and two spread ones, max-sum keeps a
// close pair that max-min avoids.
func TestBruteForceMSDPvsMMDP(t *testing.T) {
	// Points on a line at 0, 1, 5, 9, 10 with k = 3: max-sum tolerates the
	// 1-unit pair (compensated by two long edges, sum 20), while max-min
	// uniquely picks {0, 5, 10} with minimum gap 5 — the Figure 2 contrast.
	pts := [][2]float64{{0, 0}, {1, 0}, {5, 0}, {9, 0}, {10, 0}}
	d := euclid(pts)
	msdp, _, err := BruteForce(5, 3, d, MaxSum)
	if err != nil {
		t.Fatal(err)
	}
	mmdp, _, err := BruteForce(5, 3, d, MaxMin)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(msdp)
	sort.Ints(mmdp)
	if got, want := MinPairwise(mmdp, d), MinPairwise(msdp, d); got <= want {
		t.Errorf("MMDP min distance %v not larger than MSDP's %v", got, want)
	}
	if got, want := SumPairwise(msdp, d), SumPairwise(mmdp, d); got < want {
		t.Errorf("MSDP sum %v smaller than MMDP's %v", got, want)
	}
}

// TestGreedy2Approximation: the greedy result is within a factor 2 of the
// brute-force optimum on random metric instances — Lemma 4.
func TestGreedy2Approximation(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 50; trial++ {
		m := 6 + r.Intn(6)
		k := 2 + r.Intn(3)
		pts := make([][2]float64, m)
		for i := range pts {
			pts[i] = [2]float64{r.Float64() * 10, r.Float64() * 10}
		}
		d := euclid(pts)
		_, opt, err := BruteForce(m, k, d, MaxMin)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := SelectDiverseSet(m, k, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := MinPairwise(greedy, d)
		if got < opt/2-1e-9 {
			t.Fatalf("trial %d: greedy %v < OPT/2 = %v", trial, got, opt/2)
		}
	}
}

// TestGreedyJaccardMetric runs the approximation check under a Jaccard-like
// distance over random sets, the metric actually used by the framework.
func TestGreedy2ApproximationJaccard(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		m := 6 + r.Intn(4)
		sets := make([]map[int]bool, m)
		for i := range sets {
			sets[i] = map[int]bool{}
			for j := 0; j < 20+r.Intn(30); j++ {
				sets[i][r.Intn(60)] = true
			}
		}
		d := func(i, j int) float64 {
			inter := 0
			for x := range sets[i] {
				if sets[j][x] {
					inter++
				}
			}
			union := len(sets[i]) + len(sets[j]) - inter
			if union == 0 {
				return 0
			}
			return 1 - float64(inter)/float64(union)
		}
		k := 3
		_, opt, err := BruteForce(m, k, d, MaxMin)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := SelectDiverseSet(m, k, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := MinPairwise(greedy, d); got < opt/2-1e-9 {
			t.Fatalf("trial %d: greedy %v < OPT/2 = %v", trial, got, opt/2)
		}
	}
}

func TestSelectDiverseSetFull(t *testing.T) {
	// k = m returns all items exactly once.
	pts := [][2]float64{{0, 0}, {1, 0}, {2, 0}}
	got, err := SelectDiverseSet(3, 3, euclid(pts), nil)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("selection = %v", got)
		}
	}
}

func TestGreedyMaxSum(t *testing.T) {
	pts := [][2]float64{{0, 0}, {10, 0}, {1, 0}, {5, 4}}
	d := euclid(pts)
	got, err := GreedyMaxSum(4, 2, d)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("GreedyMaxSum seed pair = %v, want the farthest pair [0 1]", got)
	}
	got, err = GreedyMaxSum(4, 3, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatal("wrong size")
	}
	if _, err := GreedyMaxSum(4, 0, d); err == nil {
		t.Error("expected error for k=0")
	}
	one, err := GreedyMaxSum(1, 1, d)
	if err != nil || len(one) != 1 {
		t.Error("k=1 broken")
	}
}

func TestSelectionOrderIsSelectionOrder(t *testing.T) {
	// The first element of the result must be the seed even when it is not
	// item 0, so callers can prefix-truncate for smaller k.
	pts := [][2]float64{{0, 0}, {5, 5}, {9, 0}}
	score := []float64{0, 7, 0}
	got, _ := SelectDiverseSet(3, 3, euclid(pts), score)
	if got[0] != 1 {
		t.Errorf("selection order broken: %v", got)
	}
}

func BenchmarkSelectDiverseSet(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	m := 1000
	pts := make([][2]float64, m)
	for i := range pts {
		pts[i] = [2]float64{r.Float64(), r.Float64()}
	}
	d := euclid(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectDiverseSet(m, 10, d, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBruteForceK2(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	m := 100
	pts := make([][2]float64, m)
	for i := range pts {
		pts[i] = [2]float64{r.Float64(), r.Float64()}
	}
	d := euclid(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BruteForce(m, 2, d, MaxMin); err != nil {
			b.Fatal(err)
		}
	}
}
