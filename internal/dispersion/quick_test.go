package dispersion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestGreedySelectionsAreDistinct: for arbitrary point sets, the greedy
// returns k distinct in-range items and its objective never exceeds the
// brute-force optimum.
func TestGreedyPropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 4 + r.Intn(6)
		k := 2 + r.Intn(m-1)
		pts := make([][2]float64, m)
		for i := range pts {
			pts[i] = [2]float64{r.Float64(), r.Float64()}
		}
		d := func(i, j int) float64 {
			dx, dy := pts[i][0]-pts[j][0], pts[i][1]-pts[j][1]
			return math.Sqrt(dx*dx + dy*dy)
		}
		sel, err := SelectDiverseSet(m, k, d, nil)
		if err != nil || len(sel) != k {
			return false
		}
		seen := map[int]bool{}
		for _, s := range sel {
			if s < 0 || s >= m || seen[s] {
				return false
			}
			seen[s] = true
		}
		_, opt, err := BruteForce(m, k, d, MaxMin)
		if err != nil {
			return false
		}
		g := MinPairwise(sel, d)
		return g <= opt+1e-12 && g >= opt/2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestObjectivesMonotoneInK: OPT(k) is non-increasing in k for both
// objectives' min-pairwise readings.
func TestMMDPMonotoneInK(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	m := 9
	pts := make([][2]float64, m)
	for i := range pts {
		pts[i] = [2]float64{r.Float64(), r.Float64()}
	}
	d := func(i, j int) float64 {
		dx, dy := pts[i][0]-pts[j][0], pts[i][1]-pts[j][1]
		return math.Sqrt(dx*dx + dy*dy)
	}
	prev := math.Inf(1)
	for k := 2; k <= m; k++ {
		_, opt, err := BruteForce(m, k, d, MaxMin)
		if err != nil {
			t.Fatal(err)
		}
		if opt > prev+1e-12 {
			t.Fatalf("OPT increased from %v to %v at k=%d", prev, opt, k)
		}
		prev = opt
	}
}
