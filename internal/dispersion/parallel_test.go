package dispersion

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"skydiver/internal/minhash"
)

// parallel_test.go pins SelectDiverseSetParallelCtx to the sequential
// selection — same items, same order, every worker count, scalar and batched
// oracle — and covers cancellation of the new ctx variants.

// synthDist builds a deterministic pseudo-random symmetric metric-ish
// distance over m items with deliberately many ties (values quantized to
// 1/8ths) so the tie-break rules are actually exercised.
func synthDist(m int, seed int64) DistFunc {
	r := rand.New(rand.NewSource(seed))
	vals := make([]float64, m*m)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			d := float64(r.Intn(8)+1) / 8
			vals[i*m+j] = d
			vals[j*m+i] = d
		}
	}
	return func(i, j int) float64 { return vals[i*m+j] }
}

// synthScore builds scores with repeated values, again to stress ties.
func synthScore(m int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	s := make([]float64, m)
	for i := range s {
		s[i] = float64(r.Intn(5))
	}
	return s
}

// TestParallelSelectionMatchesSequential is the golden pin: for a grid of
// sizes, k values and worker counts, the parallel selection must return the
// exact sequence the sequential code returns — including through the
// small-m fallback and with the batched oracle plugged in.
func TestParallelSelectionMatchesSequential(t *testing.T) {
	for _, m := range []int{1, 2, 17, 100, 2048, 3001} {
		dist := synthDist(m, int64(m))
		score := synthScore(m, int64(m)+1)
		distMany := func(i int, js []int, out []float64) {
			for c, j := range js {
				out[c] = dist(i, j)
			}
		}
		for _, k := range []int{1, 2, 5, 10} {
			if k > m {
				continue
			}
			want, err := SelectDiverseSet(m, k, dist, score)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 1, 2, 3, 7, 16} {
				got, err := SelectDiverseSetParallelCtx(context.Background(), m, k, dist, nil, score, workers)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("m=%d k=%d workers=%d scalar: got %v, want %v", m, k, workers, got, want)
				}
				got, err = SelectDiverseSetParallelCtx(context.Background(), m, k, dist, distMany, score, workers)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("m=%d k=%d workers=%d batched: got %v, want %v", m, k, workers, got, want)
				}
			}
		}
	}
}

// TestParallelSelectionNilScore covers the score-free path.
func TestParallelSelectionNilScore(t *testing.T) {
	m := 2500
	dist := synthDist(m, 9)
	want, err := SelectDiverseSet(m, 6, dist, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SelectDiverseSetParallelCtx(context.Background(), m, 6, dist, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestParallelSelectionValidation mirrors the sequential validation errors.
func TestParallelSelectionValidation(t *testing.T) {
	dist := synthDist(10, 1)
	if _, err := SelectDiverseSetParallelCtx(context.Background(), 5000, 0, dist, nil, nil, 2); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := SelectDiverseSetParallelCtx(context.Background(), 5000, 5001, dist, nil, nil, 2); err == nil {
		t.Error("k>m accepted")
	}
	if _, err := SelectDiverseSetParallelCtx(context.Background(), 5000, 3, dist, nil, []float64{1}, 2); err == nil {
		t.Error("bad score length accepted")
	}
}

// TestParallelSelectionCancelled checks the anytime contract: a cancelled
// parallel run returns a valid prefix of the sequential selection together
// with the context error.
func TestParallelSelectionCancelled(t *testing.T) {
	m := 4096
	dist := synthDist(m, 3)
	want, err := SelectDiverseSet(m, 8, dist, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var rounds atomic.Int32 // the batched oracle runs on two workers at once
	got, err := SelectDiverseSetParallelCtx(ctx, m, 8, dist, func(i int, js []int, out []float64) {
		for c, j := range js {
			out[c] = dist(i, j)
		}
		if rounds.Add(1) >= 6 {
			cancel()
		}
	}, nil, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(got) >= 8 {
		t.Fatalf("cancelled run returned a full selection of %d items", len(got))
	}
	for i, v := range got {
		if v != want[i] {
			t.Fatalf("partial prefix diverges at %d: got %v, want prefix of %v", i, got, want)
		}
	}
}

// TestFarthestSeedCtxCancel pins the new cancellation point inside the
// O(m²) seeding scan: a pre-cancelled context must abort with no selection,
// and a context cancelled mid-scan must abort within one check stride.
func TestFarthestSeedCtxCancel(t *testing.T) {
	m := 600 // m² = 360000 pair evaluations ≫ cancelCheckStride
	dist := synthDist(m, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := SelectDiverseSetFarthestSeedCtx(ctx, m, 5, dist)
	if !errors.Is(err, context.Canceled) || len(got) != 0 {
		t.Fatalf("pre-cancelled: got %v, err %v", got, err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	evals := 0
	counting := func(i, j int) float64 {
		evals++
		if evals == 2*cancelCheckStride {
			cancel2()
		}
		return dist(i, j)
	}
	_, err = SelectDiverseSetFarthestSeedCtx(ctx2, m, 5, counting)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-seeding cancel: err = %v", err)
	}
	if evals > 3*cancelCheckStride {
		t.Fatalf("cancellation latency: %d evaluations after cancel at %d", evals, 2*cancelCheckStride)
	}

	// Uncancelled ctx variant matches the plain function.
	want, err := SelectDiverseSetFarthestSeed(m, 5, dist)
	if err != nil {
		t.Fatal(err)
	}
	got, err = SelectDiverseSetFarthestSeedCtx(context.Background(), m, 5, dist)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ctx variant diverged: %v vs %v", got, want)
	}
}

// TestGreedyMaxSumCtxCancel is the same contract for the max-sum heuristic.
func TestGreedyMaxSumCtxCancel(t *testing.T) {
	m := 600
	dist := synthDist(m, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := GreedyMaxSumCtx(ctx, m, 5, dist)
	if !errors.Is(err, context.Canceled) || len(got) != 0 {
		t.Fatalf("pre-cancelled: got %v, err %v", got, err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	evals := 0
	counting := func(i, j int) float64 {
		evals++
		if evals == 2*cancelCheckStride {
			cancel2()
		}
		return dist(i, j)
	}
	_, err = GreedyMaxSumCtx(ctx2, m, 5, counting)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-seeding cancel: err = %v", err)
	}
	if evals > 3*cancelCheckStride {
		t.Fatalf("cancellation latency: %d evaluations after cancel at %d", evals, 2*cancelCheckStride)
	}

	want, err := GreedyMaxSum(m, 5, dist)
	if err != nil {
		t.Fatal(err)
	}
	got, err = GreedyMaxSumCtx(context.Background(), m, 5, dist)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ctx variant diverged: %v vs %v", got, want)
	}
}

// benchSignatureDist builds a distance oracle with the cost profile of the
// real selection phase: each evaluation scans two t-slot MinHash signatures.
// (A plain array-lookup distance would make the round barrier look expensive
// relative to work that, in production, is two orders of magnitude heavier.)
func benchSignatureDist(m, t int) (DistFunc, DistManyFunc, []float64) {
	mat := minhash.NewMatrix(t, m)
	fam, err := minhash.NewFamily(t, 11)
	if err != nil {
		panic(err)
	}
	hv := make([]uint32, t)
	for row := 0; row < 2*m; row++ {
		fam.HashAll(hv, uint64(row))
		mat.UpdateColumn(row%m, hv)
		mat.UpdateColumn((row*7+3)%m, hv)
	}
	score := make([]float64, m)
	for i := range score {
		score[i] = float64(i % 13)
	}
	dist := func(i, j int) float64 { return mat.EstimateJd(i, j) }
	return dist, mat.EstimateJdMany, score
}

// BenchmarkSelectParallel measures the parallel selection against its
// sequential twin on a selection-phase-shaped workload (m = 4096 skyline
// points, t = 400 slots, k = 32). Workers are pinned to 4 rather than
// GOMAXPROCS so the parallel machinery is always on the measured path — on a
// single-CPU host this reports the coordination overhead (which should stay
// within a few percent of sequential), on a multicore host the speedup.
func BenchmarkSelectParallel(b *testing.B) {
	dist, distMany, score := benchSignatureDist(4096, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectDiverseSetParallelCtx(context.Background(), 4096, 32, dist, distMany, score, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectSequential is the baseline for BenchmarkSelectParallel.
func BenchmarkSelectSequential(b *testing.B) {
	dist, _, score := benchSignatureDist(4096, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectDiverseSet(4096, 32, dist, score); err != nil {
			b.Fatal(err)
		}
	}
}
