package dispersion

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// DistManyFunc is the batched form of DistFunc: it writes dist(i, js[c])
// into out[c] for every candidate in js. Implementations must agree with the
// scalar oracle bit for bit (the signature-matrix and LSH bit-vector
// distances do: their arithmetic is identical, only the access order
// changes), because SelectDiverseSetParallelCtx is pinned to produce exactly
// the sequential selection.
type DistManyFunc func(i int, js []int, out []float64)

// parallelMinItems is the smallest item count worth fanning out: below it,
// goroutine startup and the per-round barrier cost more than the O(m) work
// they split.
const parallelMinItems = 2048

// SelectDiverseSetParallelCtx is SelectDiverseSetCtx with the per-round O(m)
// work — the min-distance update against the freshly selected point and the
// argmax scan for the next pick — sharded across workers. distMany, when
// non-nil, replaces the scalar oracle inside each shard with one batched
// call per round (the cache-blocked estimator kernels); dist remains
// required for the small-m sequential fallback. workers <= 0 uses
// GOMAXPROCS.
//
// The selection is deterministic and identical to the sequential code for
// any worker count: every minDist[i] sees the same update sequence it would
// see sequentially (each entry is owned by exactly one shard), and the
// shard-local argmax candidates are merged in ascending shard order under
// the sequential comparison rule — strictly greater distance wins, equal
// distance falls back to strictly greater score — so the lowest index wins
// all remaining ties, exactly like the sequential left-to-right scan.
//
// The distance oracles must be safe for concurrent calls (pure functions
// over in-memory structures are; the I/O-issuing exact oracle is not — keep
// Simple-Greedy on the sequential variant).
func SelectDiverseSetParallelCtx(ctx context.Context, m, k int, dist DistFunc, distMany DistManyFunc, score []float64, workers int) ([]int, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || m < parallelMinItems {
		return SelectDiverseSetCtx(ctx, m, k, dist, score)
	}
	if k < 1 {
		return nil, fmt.Errorf("dispersion: non-positive k %d", k)
	}
	if k > m {
		return nil, fmt.Errorf("dispersion: k %d exceeds item count %d", k, m)
	}
	if score != nil && len(score) != m {
		return nil, fmt.Errorf("dispersion: score vector has %d entries for %d items", len(score), m)
	}
	if err := ctx.Err(); err != nil {
		return []int{}, err
	}
	sc := func(i int) float64 {
		if score == nil {
			return 0
		}
		return score[i]
	}
	// Seed: maximum score (sequential scan — O(m) comparisons, no oracle).
	first := 0
	for i := 1; i < m; i++ {
		if sc(i) > sc(first) {
			first = i
		}
	}
	selected := make([]int, 0, k)
	selected = append(selected, first)
	if k == 1 {
		// Match the sequential variant's oracle-free exit shape: no distance
		// is ever needed for a single pick. (The sequential code computes the
		// initial minDist vector even for k = 1; its values are discarded, so
		// skipping them changes no output.)
		return selected, nil
	}

	inSet := make([]bool, m)
	inSet[first] = true
	minDist := make([]float64, m)

	// Shards: fixed contiguous ranges so each minDist entry has one owner.
	if workers > m {
		workers = m
	}
	chunk := (m + workers - 1) / workers
	type shardBest struct {
		idx int // -1 = shard exhausted
	}
	bests := make([]shardBest, workers)
	errs := make([]error, workers)

	// Per-shard scratch for the batched oracle: candidate indexes and their
	// distances, reused across rounds.
	jsBuf := make([][]int, workers)
	outBuf := make([][]float64, workers)
	for w := 0; w < workers; w++ {
		if distMany != nil {
			n := chunk
			jsBuf[w] = make([]int, 0, n)
			outBuf[w] = make([]float64, n)
		}
	}

	// Persistent workers, one round per release: cheaper than spawning
	// workers×k goroutines and keeps the scratch buffers warm. Each worker
	// owns a dedicated channel so every shard runs exactly once per round (a
	// shared channel would let a fast worker steal a slow one's release and
	// leave that shard's argmax stale).
	var (
		wg       sync.WaitGroup
		starts   = make([]chan int, workers) // per-worker: the freshly selected point
		done     = make(chan struct{})
		roundSem sync.WaitGroup
	)
	for w := range starts {
		starts[w] = make(chan int, 1)
	}
	firstRound := true
	runShard := func(w, cur int, first bool) {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > m {
			hi = m
		}
		best := -1
		if distMany != nil {
			js := jsBuf[w][:0]
			for i := lo; i < hi; i++ {
				if !inSet[i] {
					js = append(js, i)
				}
			}
			jsBuf[w] = js
			out := outBuf[w][:len(js)]
			distMany(cur, js, out)
			for c, i := range js {
				d := out[c]
				if first {
					minDist[i] = d
				} else if d < minDist[i] {
					minDist[i] = d
				}
				if best == -1 || minDist[i] > minDist[best] ||
					(minDist[i] == minDist[best] && sc(i) > sc(best)) {
					best = i
				}
			}
		} else {
			evals := 0
			for i := lo; i < hi; i++ {
				if inSet[i] {
					continue
				}
				d := dist(i, cur)
				if first {
					minDist[i] = d
				} else if d < minDist[i] {
					minDist[i] = d
				}
				if best == -1 || minDist[i] > minDist[best] ||
					(minDist[i] == minDist[best] && sc(i) > sc(best)) {
					best = i
				}
				if evals++; evals%cancelCheckStride == 0 {
					if err := ctx.Err(); err != nil {
						errs[w] = err
						bests[w] = shardBest{idx: best}
						return
					}
				}
			}
		}
		bests[w] = shardBest{idx: best}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case cur := <-starts[w]:
					runShard(w, cur, firstRound)
					roundSem.Done()
				case <-done:
					return
				}
			}
		}(w)
	}
	defer func() {
		close(done)
		wg.Wait()
	}()

	cur := first
	for len(selected) < k {
		if err := ctx.Err(); err != nil {
			return selected, err
		}
		// Release one round: every worker updates its shard against cur and
		// reports its shard-local argmax.
		roundSem.Add(workers)
		for w := 0; w < workers; w++ {
			starts[w] <- cur
		}
		roundSem.Wait()
		firstRound = false
		for w := 0; w < workers; w++ {
			if errs[w] != nil {
				return selected, errs[w]
			}
		}
		// Merge in ascending shard order with the sequential comparison:
		// identical to one left-to-right scan over all items.
		best := -1
		for w := 0; w < workers; w++ {
			i := bests[w].idx
			if i == -1 {
				continue
			}
			if best == -1 || minDist[i] > minDist[best] ||
				(minDist[i] == minDist[best] && sc(i) > sc(best)) {
				best = i
			}
		}
		selected = append(selected, best)
		inSet[best] = true
		cur = best
	}
	return selected, nil
}
