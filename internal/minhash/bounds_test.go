package minhash

import (
	"testing"
	"testing/quick"
)

// bounds_test.go pins the screened fold paths to the plain fold: the
// slot-max and group-max screens are pure short-circuits and must never
// change a single slot, for any update sequence, signature size, or column
// count.

// TestGroupedFoldMatchesPlain: folding through UpdateColumnGrouped and
// UpdateColumnBounded produces matrices bit-identical to UpdateColumn, with
// HashAllGroupMin/HashAllMin agreeing with HashAll on the way.
func TestGroupedFoldMatchesPlain(t *testing.T) {
	sizes := []int{1, 2, 3, 7, 8, 9, 15, 16, 31, 100, 163}
	for _, size := range sizes {
		f := func(rows []uint16, colPick []uint8) bool {
			const cols = 3
			fam, _ := NewFamily(size, int64(size))
			plain := NewMatrix(size, cols)
			bounded := NewMatrix(size, cols)
			grouped := NewMatrix(size, cols)
			hv := make([]uint32, size)
			hvMin := make([]uint32, size)
			hvGrp := make([]uint32, size)
			gm := make([]uint32, grouped.Groups())
			for k, r := range rows {
				c := 0
				if k < len(colPick) {
					c = int(colPick[k]) % cols
				}
				fam.HashAll(hv, uint64(r))
				minHv := fam.HashAllMin(hvMin, uint64(r))
				grpMin := fam.HashAllGroupMin(hvGrp, uint64(r), gm)
				for i := range hv {
					if hv[i] != hvMin[i] || hv[i] != hvGrp[i] {
						return false
					}
				}
				if minHv != grpMin {
					return false
				}
				plain.UpdateColumn(c, hv)
				bounded.UpdateColumnBounded(c, hvMin, minHv)
				grouped.UpdateColumnGrouped(c, hvGrp, gm, grpMin)
			}
			for c := 0; c < cols; c++ {
				pc, bc, gc := plain.Column(c), bounded.Column(c), grouped.Column(c)
				for i := range pc {
					if pc[i] != bc[i] || pc[i] != gc[i] {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("t=%d: %v", size, err)
		}
	}
}

// TestBoundsStayExact: after arbitrary interleavings of the three fold
// entry points on one matrix, colMax and groupMax equal the true maxima of
// each column's slots — the invariant every screen relies on.
func TestBoundsStayExact(t *testing.T) {
	f := func(rows []uint16, path []uint8) bool {
		const size, cols = 24, 2
		fam, _ := NewFamily(size, 11)
		m := NewMatrix(size, cols)
		hv := make([]uint32, size)
		gm := make([]uint32, m.Groups())
		for k, r := range rows {
			c := int(r) % cols
			minHv := fam.HashAllGroupMin(hv, uint64(r), gm)
			mode := uint8(2)
			if k < len(path) {
				mode = path[k] % 3
			}
			switch mode {
			case 0:
				m.UpdateColumn(c, hv)
			case 1:
				m.UpdateColumnBounded(c, hv, minHv)
			default:
				m.UpdateColumnGrouped(c, hv, gm, minHv)
			}
		}
		for c := 0; c < cols; c++ {
			col := m.Column(c)
			var trueMax uint32
			for _, v := range col {
				if v > trueMax {
					trueMax = v
				}
			}
			if m.colMax[c] != trueMax {
				return false
			}
			g := m.Groups()
			for grp := 0; grp < g; grp++ {
				lo, hi := grp*size/g, (grp+1)*size/g
				var gmax uint32
				for _, v := range col[lo:hi] {
					if v > gmax {
						gmax = v
					}
				}
				if m.groupMax[c*g+grp] != gmax {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
