package minhash

import (
	"math"
	"testing"
)

// TestHashOneAvoidsEmptySlotSentinel pins the clamp that keeps hash outputs
// off the reserved emptySlot value (math.MaxUint32, the ∞ of an untouched
// signature slot). Before the clamp, a row hashing exactly there made its
// column's slot indistinguishable from "dominates nothing".
func TestHashOneAvoidsEmptySlotSentinel(t *testing.T) {
	// a·x = 0, so v = b: pick b with low 32 bits all ones.
	cases := []struct {
		a, b, x uint64
		want    uint32
	}{
		{1, uint64(emptySlot), 0, emptySlot - 1},         // exact sentinel, clamped
		{1, 1<<33 | uint64(emptySlot), 0, emptySlot - 1}, // sentinel in the low word, clamped
		{1, 5, 0, 5},                         // ordinary value, untouched
		{3, emptySlot - 1, 0, emptySlot - 1}, // neighbor value, untouched
	}
	for _, c := range cases {
		if got := hashOne(c.a, c.b, c.x); got != c.want {
			t.Errorf("hashOne(%d, %#x, %d) = %#x, want %#x", c.a, c.b, c.x, got, c.want)
		}
	}
}

// TestFamilyNeverEmitsSentinel sweeps a family over many row ids: no output
// may collide with the sentinel, so a signature slot equal to emptySlot
// always means "empty", never "minimum happened to be MaxUint32".
func TestFamilyNeverEmitsSentinel(t *testing.T) {
	fam, err := NewFamily(64, 99)
	if err != nil {
		t.Fatal(err)
	}
	hv := make([]uint32, fam.Size())
	for x := uint64(0); x < 5000; x++ {
		fam.HashAll(hv, x)
		for i, v := range hv {
			if v == math.MaxUint32 {
				t.Fatalf("hash %d of row %d hit the emptySlot sentinel", i, x)
			}
		}
	}
}
