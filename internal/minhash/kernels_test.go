package minhash

import (
	"math/rand"
	"testing"
)

// kernels_test.go pins the estimator micro-kernels — the 8-way unrolled
// EstimateJs and the slot-blocked EstimateJsMany — to the scalar reference
// implementation, including signature sizes that straddle the unroll width
// and the streaming block boundary, and benchmarks the speedup.

// randomMatrix builds a t×cols matrix whose columns share enough hashed rows
// that similarities span (0, 1) rather than clustering at the extremes.
func randomMatrix(t, cols int, seed int64) *Matrix {
	r := rand.New(rand.NewSource(seed))
	fam, err := NewFamily(t, seed)
	if err != nil {
		panic(err)
	}
	m := NewMatrix(t, cols)
	hv := make([]uint32, t)
	for row := 0; row < 4*cols; row++ {
		fam.HashAll(hv, uint64(row))
		for c := 0; c < cols; c++ {
			// Column c absorbs a pseudo-random, column-biased subset of rows.
			if r.Intn(cols) <= c {
				m.UpdateColumn(c, hv)
			}
		}
	}
	return m
}

// TestEstimateJsMatchesScalar checks the unrolled kernel against the scalar
// reference on signature sizes around the 8-slot unroll width.
func TestEstimateJsMatchesScalar(t *testing.T) {
	for _, tt := range []int{1, 2, 7, 8, 9, 15, 16, 17, 100, 400} {
		m := randomMatrix(tt, 12, int64(tt))
		for i := 0; i < m.Cols(); i++ {
			for j := 0; j < m.Cols(); j++ {
				got, want := m.EstimateJs(i, j), m.estimateJsScalar(i, j)
				if got != want {
					t.Fatalf("t=%d: EstimateJs(%d,%d) = %v, scalar %v", tt, i, j, got, want)
				}
			}
		}
	}
}

// TestEstimateJsManyMatchesScalar checks the batched kernel on block-layout
// edge cases: signatures smaller than, equal to, one past, and several times
// the streaming slot block — the row-blocked layout must change nothing but
// the access order.
func TestEstimateJsManyMatchesScalar(t *testing.T) {
	for _, tt := range []int{3, 100, slotBlock - 1, slotBlock, slotBlock + 1, 3*slotBlock + 7} {
		m := randomMatrix(tt, 10, int64(tt))
		js := []int{0, 3, 3, 9, 1, 5}
		out := make([]float64, len(js))
		for i := 0; i < m.Cols(); i++ {
			m.EstimateJsMany(i, js, out)
			for c, j := range js {
				if want := m.estimateJsScalar(i, j); out[c] != want {
					t.Fatalf("t=%d: EstimateJsMany(%d)[%d→%d] = %v, scalar %v", tt, i, c, j, out[c], want)
				}
			}
		}
	}
}

// TestEstimateJdManyMatchesPairwise pins the distance form to the pairwise
// EstimateJd, bit for bit.
func TestEstimateJdManyMatchesPairwise(t *testing.T) {
	m := randomMatrix(100, 20, 42)
	js := make([]int, m.Cols())
	for j := range js {
		js[j] = j
	}
	out := make([]float64, len(js))
	for i := 0; i < m.Cols(); i++ {
		m.EstimateJdMany(i, js, out)
		for c, j := range js {
			if want := m.EstimateJd(i, j); out[c] != want {
				t.Fatalf("EstimateJdMany(%d)[%d] = %v, want %v", i, j, out[c], want)
			}
		}
	}
}

// TestEstimateJsManyEmpty checks the no-candidate edge case.
func TestEstimateJsManyEmpty(t *testing.T) {
	m := randomMatrix(100, 4, 1)
	m.EstimateJsMany(0, nil, nil) // must not panic
}

// --- benchmarks -----------------------------------------------------------

// benchMatrix is a selection-phase-shaped workload: the paper's default
// signature size against a mid-size skyline.
func benchMatrix(t, cols int) *Matrix { return randomMatrix(t, cols, 7) }

// BenchmarkEstimateJs measures the unrolled pairwise kernel (t = 400, the
// paper's largest signature, where kernel shape matters most).
func BenchmarkEstimateJs(b *testing.B) {
	m := benchMatrix(400, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EstimateJs(i%64, (i+17)%64)
	}
}

// BenchmarkEstimateJsSmall measures the pairwise kernel at the paper's
// smallest signature (t = 20), just past the small-input dispatch threshold
// — the regime where SWAR setup cost once made the kernel slower than the
// scalar loop.
func BenchmarkEstimateJsSmall(b *testing.B) {
	m := benchMatrix(20, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EstimateJs(i%64, (i+17)%64)
	}
}

// BenchmarkEstimateJsScalar is the pre-kernel baseline for the same pairs.
func BenchmarkEstimateJsScalar(b *testing.B) {
	m := benchMatrix(400, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.estimateJsScalar(i%64, (i+17)%64)
	}
}

// BenchmarkEstimateJsMany measures one full one-against-many update round —
// the selection phase's inner loop — with the blocked batch kernel.
func BenchmarkEstimateJsMany(b *testing.B) {
	m := benchMatrix(400, 512)
	js := make([]int, m.Cols()-1)
	for j := range js {
		js[j] = j + 1
	}
	out := make([]float64, len(js))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EstimateJsMany(0, js, out)
	}
}

// BenchmarkEstimateJsManyScalarLoop is the same round as a loop of scalar
// estimates, the shape the selection phase had before the batch kernel.
func BenchmarkEstimateJsManyScalarLoop(b *testing.B) {
	m := benchMatrix(400, 512)
	out := make([]float64, m.Cols()-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 1; j < m.Cols(); j++ {
			out[j-1] = m.estimateJsScalar(0, j)
		}
	}
}
