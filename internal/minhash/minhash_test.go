package minhash

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFamilyValidation(t *testing.T) {
	if _, err := NewFamily(0, 1); err == nil {
		t.Error("expected error for t=0")
	}
	f, err := NewFamily(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 16 {
		t.Errorf("Size = %d", f.Size())
	}
}

func TestFamilyDeterministic(t *testing.T) {
	f1, _ := NewFamily(8, 42)
	f2, _ := NewFamily(8, 42)
	f3, _ := NewFamily(8, 43)
	h1, h2, h3 := make([]uint32, 8), make([]uint32, 8), make([]uint32, 8)
	f1.HashAll(h1, 12345)
	f2.HashAll(h2, 12345)
	f3.HashAll(h3, 12345)
	same3 := 0
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("same seed must give same hashes")
		}
		if h1[i] == h3[i] {
			same3++
		}
	}
	if same3 == 8 {
		t.Error("different seeds gave identical families")
	}
}

func TestHashConsistency(t *testing.T) {
	f, _ := NewFamily(8, 7)
	all := make([]uint32, 8)
	f.HashAll(all, 999)
	for i := 0; i < 8; i++ {
		if got := f.Hash(i, 999); got != all[i] {
			t.Errorf("Hash(%d) = %d, HashAll gave %d", i, got, all[i])
		}
	}
}

// TestMulmod61 validates the Mersenne reduction against big-integer-free
// reference computation on small operands and random large ones via the
// distributive property.
func TestMulmod61(t *testing.T) {
	const p = uint64(1<<61 - 1)
	for _, tc := range [][3]uint64{
		{0, 0, 0},
		{1, 1, 1},
		{p - 1, 1, p - 1},
		{p - 1, 2, p - 2},     // 2p-2 mod p
		{1 << 30, 1 << 31, 1}, // 2^61 mod p = 1
	} {
		if got := mulmod61(tc[0], tc[1]); got != tc[2] {
			t.Errorf("mulmod61(%d, %d) = %d, want %d", tc[0], tc[1], got, tc[2])
		}
	}
	// Property: (a·x + a·y) mod p == a·(x+y) mod p for x+y < p.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10000; trial++ {
		a := uint64(r.Int63n(int64(p)))
		x := uint64(r.Int63n(1 << 40))
		y := uint64(r.Int63n(1 << 40))
		lhs := mulmod61(a, x) + mulmod61(a, y)
		lhs %= p
		rhs := mulmod61(a, x+y)
		if lhs != rhs {
			t.Fatalf("distributivity failed: a=%d x=%d y=%d", a, x, y)
		}
	}
}

func TestMul64AgainstSmall(t *testing.T) {
	f := func(a, b uint32) bool {
		hi, lo := mul64(uint64(a), uint64(b))
		return hi == 0 && lo == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	hi, lo := mul64(1<<63, 2)
	if hi != 1 || lo != 0 {
		t.Errorf("mul64(2^63, 2) = (%d, %d), want (1, 0)", hi, lo)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(4, 3)
	if m.T() != 4 || m.Cols() != 3 || m.MemoryBytes() != 48 {
		t.Error("matrix accessors broken")
	}
	for _, v := range m.Column(1) {
		if v != emptySlot {
			t.Fatal("fresh matrix not empty")
		}
	}
	m.UpdateColumn(1, []uint32{5, 9, 2, 7})
	m.UpdateColumn(1, []uint32{6, 3, 4, 7})
	want := []uint32{5, 3, 2, 7}
	for i, v := range m.Column(1) {
		if v != want[i] {
			t.Errorf("slot %d = %d, want %d", i, v, want[i])
		}
	}
	// Other columns untouched.
	if m.Column(0)[0] != emptySlot || m.Column(2)[0] != emptySlot {
		t.Error("update leaked into other columns")
	}
}

func TestEstimateIdenticalAndEmpty(t *testing.T) {
	m := NewMatrix(8, 2)
	hv := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	m.UpdateColumn(0, hv)
	m.UpdateColumn(1, hv)
	if js := m.EstimateJs(0, 1); js != 1 {
		t.Errorf("identical columns Js = %v", js)
	}
	if jd := m.EstimateJd(0, 1); jd != 0 {
		t.Errorf("identical columns Jd = %v", jd)
	}
	empty := NewMatrix(8, 2)
	if js := empty.EstimateJs(0, 1); js != 1 {
		t.Errorf("two empty columns must be identical, Js = %v", js)
	}
}

// exactJaccard computes the exact Jaccard similarity of two integer sets.
func exactJaccard(a, b map[uint64]bool) float64 {
	inter, union := 0, 0
	for x := range a {
		if b[x] {
			inter++
		}
	}
	union = len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// TestEstimateConvergence builds signatures over explicit random sets and
// checks the MinHash estimate approaches the exact Jaccard similarity,
// the core property Prob[h(p)=h(q)] = Js(p,q) the framework rests on.
func TestEstimateConvergence(t *testing.T) {
	const tSig = 512
	f, _ := NewFamily(tSig, 11)
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		// Build two overlapping sets with controlled overlap.
		a := map[uint64]bool{}
		b := map[uint64]bool{}
		shared := 100 + r.Intn(400)
		onlyA := r.Intn(400)
		onlyB := r.Intn(400)
		next := uint64(1)
		for i := 0; i < shared; i++ {
			a[next] = true
			b[next] = true
			next++
		}
		for i := 0; i < onlyA; i++ {
			a[next] = true
			next++
		}
		for i := 0; i < onlyB; i++ {
			b[next] = true
			next++
		}
		m := NewMatrix(tSig, 2)
		hv := make([]uint32, tSig)
		for x := range a {
			f.HashAll(hv, x)
			m.UpdateColumn(0, hv)
		}
		for x := range b {
			f.HashAll(hv, x)
			m.UpdateColumn(1, hv)
		}
		want := exactJaccard(a, b)
		got := m.EstimateJs(0, 1)
		// Standard error ~ sqrt(J(1-J)/t) <= 0.5/sqrt(512) ≈ 0.022; allow 4σ.
		if math.Abs(got-want) > 0.09 {
			t.Errorf("trial %d: estimate %v, exact %v", trial, got, want)
		}
	}
}

// TestEstimateMonotone: supersets of shared rows increase estimated
// similarity on average; disjoint sets estimate near zero.
func TestEstimateDisjoint(t *testing.T) {
	const tSig = 256
	f, _ := NewFamily(tSig, 2)
	m := NewMatrix(tSig, 2)
	hv := make([]uint32, tSig)
	for x := uint64(0); x < 500; x++ {
		f.HashAll(hv, x)
		m.UpdateColumn(0, hv)
	}
	for x := uint64(1000); x < 1500; x++ {
		f.HashAll(hv, x)
		m.UpdateColumn(1, hv)
	}
	if js := m.EstimateJs(0, 1); js > 0.05 {
		t.Errorf("disjoint sets estimated Js = %v", js)
	}
}

func TestHashUniformity(t *testing.T) {
	f, _ := NewFamily(1, 9)
	buckets := make([]int, 16)
	for x := uint64(0); x < 16000; x++ {
		buckets[f.Hash(0, x)%16]++
	}
	for i, c := range buckets {
		if c < 700 || c > 1300 {
			t.Errorf("bucket %d has %d of 16000 (expected ~1000)", i, c)
		}
	}
}

func TestSignatureSizeFor(t *testing.T) {
	n, err := SignatureSizeFor(0.5, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n < 10 || n > 100 {
		t.Errorf("SignatureSizeFor = %d, implausible", n)
	}
	for _, bad := range [][3]float64{{0, 0.5, 0.5}, {0.5, 1, 0.5}, {0.5, 0.5, 0}} {
		if _, err := SignatureSizeFor(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("expected error for %v", bad)
		}
	}
}

func BenchmarkHashAll100(b *testing.B) {
	f, _ := NewFamily(100, 1)
	dst := make([]uint32, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.HashAll(dst, uint64(i))
	}
}
