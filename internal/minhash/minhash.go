// Package minhash implements min-wise hashing over the (implicit) domination
// matrix, Phase 1 of the SkyDiver framework (Section 4.1).
//
// Each skyline point's dominated set Γ(p) — a column of the n×m domination
// matrix — is summarized by a signature of t slots. Slot i holds the minimum
// value of hash function h_i over the row ids contained in the column, where
// h_i(x) = (a_i·x + b_i) mod P for a prime P larger than the number of rows.
// The probability that two columns agree on a slot equals their Jaccard
// similarity, so the fraction of agreeing slots estimates Js.
//
// As in the paper, the linear congruential family is not exactly min-wise
// independent but is the standard approximation that works well in practice.
// P is the Mersenne prime 2^61−1, large enough for any dataset this
// repository handles; slot values are folded to 32 bits, matching the
// 4-bytes-per-slot memory accounting of Section 5 (Figure 13) at a 2^-32
// collision risk.
package minhash

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"unsafe"
)

// mersenne61 is the modulus of the hash family.
const mersenne61 = (1 << 61) - 1

// emptySlot is the value of a slot no row has been hashed into (∞ in the
// paper's pseudocode, Figure 3 line 1).
const emptySlot = math.MaxUint32

// Family is a set of t approximately min-wise independent hash functions.
type Family struct {
	a, b []uint64
}

// NewFamily draws t hash functions with coefficients in [1, P-1],
// deterministically from the seed.
func NewFamily(t int, seed int64) (*Family, error) {
	if t <= 0 {
		return nil, fmt.Errorf("minhash: non-positive signature size %d", t)
	}
	r := rand.New(rand.NewSource(seed))
	f := &Family{a: make([]uint64, t), b: make([]uint64, t)}
	for i := 0; i < t; i++ {
		f.a[i] = 1 + uint64(r.Int63n(mersenne61-1))
		f.b[i] = 1 + uint64(r.Int63n(mersenne61-1))
	}
	return f, nil
}

// Size returns the number of hash functions (the signature size t).
func (f *Family) Size() int { return len(f.a) }

// HashAll evaluates every hash function on row id x, writing the 32-bit
// folded values into dst (which must have length Size). SigGen computes this
// once per data row and reuses it for all dominating skyline columns.
func (f *Family) HashAll(dst []uint32, x uint64) {
	for i := range f.a {
		dst[i] = hashOne(f.a[i], f.b[i], x)
	}
}

// HashAllMin is HashAll returning additionally the minimum of the written
// values. The signature generators pair it with UpdateColumnBounded: one
// extra comparison per slot here lets every dominating column first test the
// row against its slot-max bound and skip the whole t-slot min-fold when no
// slot could possibly improve — the short-circuit that makes Phase 1 scale
// with the number of *effective* updates instead of the raw pair count.
func (f *Family) HashAllMin(dst []uint32, x uint64) uint32 {
	minv := uint32(math.MaxUint32)
	for i := range f.a {
		v := hashOne(f.a[i], f.b[i], x)
		dst[i] = v
		if v < minv {
			minv = v
		}
	}
	return minv
}

// HashAllGroupMin is HashAllMin additionally writing the per-group minima of
// the slot groups defined by GroupsFor into gm (whose length must be
// GroupsFor(Size())). UpdateColumnGrouped uses them to skip not just whole
// folds but every slot group the row cannot improve.
func (f *Family) HashAllGroupMin(dst []uint32, x uint64, gm []uint32) uint32 {
	t := len(f.a)
	g := len(gm)
	minv := uint32(math.MaxUint32)
	for k := 0; k < g; k++ {
		lo, hi := k*t/g, (k+1)*t/g
		gv := uint32(math.MaxUint32)
		for i := lo; i < hi; i++ {
			v := hashOne(f.a[i], f.b[i], x)
			dst[i] = v
			if v < gv {
				gv = v
			}
		}
		gm[k] = gv
		if gv < minv {
			minv = gv
		}
	}
	return minv
}

// HashAllGroupMinAccum is HashAllGroupMin that additionally folds each hash
// value into a running per-slot minimum vector acc. Fusing the fold into
// the hashing loop spares a second pass over dst per row; the sharded
// generator leans on it to accumulate range minima while hashing.
func (f *Family) HashAllGroupMinAccum(dst []uint32, x uint64, gm []uint32, acc []uint32) uint32 {
	t := len(f.a)
	g := len(gm)
	minv := uint32(math.MaxUint32)
	for k := 0; k < g; k++ {
		lo, hi := k*t/g, (k+1)*t/g
		gv := uint32(math.MaxUint32)
		for i := lo; i < hi; i++ {
			v := hashOne(f.a[i], f.b[i], x)
			dst[i] = v
			if v < gv {
				gv = v
			}
			if v < acc[i] {
				acc[i] = v
			}
		}
		gm[k] = gv
		if gv < minv {
			minv = gv
		}
	}
	return minv
}

// HashRange evaluates hash functions [lo, hi) on row id x, writing the
// values into dst[:hi−lo], and returns their minimum (MaxUint32 when the
// range is empty). The parallel signature generators stripe the hash family
// across workers with it: each worker evaluates only the slot rows it owns,
// so the total hash work across workers equals one HashAll per data row.
func (f *Family) HashRange(dst []uint32, x uint64, lo, hi int) uint32 {
	minv := uint32(math.MaxUint32)
	for i := lo; i < hi; i++ {
		v := hashOne(f.a[i], f.b[i], x)
		dst[i-lo] = v
		if v < minv {
			minv = v
		}
	}
	return minv
}

// Hash evaluates hash function i on row id x.
func (f *Family) Hash(i int, x uint64) uint32 {
	return hashOne(f.a[i], f.b[i], x)
}

// hashOne computes (a·x + b) mod P folded to 32 bits. Values are uniform in
// [0, P), so keeping the low 32 bits preserves uniformity — except that the
// all-ones word is reserved: it is the emptySlot ∞ sentinel, and a row
// legitimately hashing there would make its column indistinguishable from
// "dominates nothing", skewing EstimateJs for near-empty columns. Such a
// value is clamped to MaxUint32−1 (a 2⁻³² bias, well below the estimator's
// own variance).
func hashOne(a, b, x uint64) uint32 {
	v := mulmod61(a, x) + b
	if v >= mersenne61 {
		v -= mersenne61
	}
	h := uint32(v)
	if h == emptySlot {
		h--
	}
	return h
}

// mulmod61 returns a·x mod 2^61−1 without overflow, using the identity
// 2^61 ≡ 1 (mod P): split the 122-bit product into 61-bit limbs and add them.
func mulmod61(a, x uint64) uint64 {
	hi, lo := mul64(a, x)
	// product = hi·2^64 + lo; 2^64 mod P = 8.
	sum := hi*8 + (lo >> 61) + (lo & mersenne61)
	for sum >= mersenne61 {
		sum -= mersenne61
	}
	return sum
}

// mul64 returns the 128-bit product of a and b as (hi, lo), via the
// bits.Mul64 intrinsic — a single widening multiply on amd64/arm64, and the
// dominant instruction of the whole hash family.
func mul64(a, b uint64) (hi, lo uint64) {
	return bits.Mul64(a, b)
}

// Matrix is the signature matrix M̂: one t-slot signature per skyline point,
// stored column-major so a point's signature is contiguous.
type Matrix struct {
	t, cols int
	groups  int
	sig     []uint32
	// colMax[c] caches the maximum slot value of column c. A row whose
	// minimum hash value is ≥ colMax[c] cannot lower any slot (every hv[i] ≥
	// min(hv) ≥ colMax[c] ≥ col[i]), so UpdateColumnBounded skips the whole
	// t-slot fold. Once a column has absorbed k rows its slots sit near P/k,
	// so for the large columns that dominate Phase-1 runtime almost every
	// later row is rejected by this single comparison.
	colMax []uint32
	// groupMax refines colMax to GroupsFor(t) slot groups per column
	// (groupMax[c*groups+g] bounds group g), letting UpdateColumnGrouped skip
	// the groups a row cannot improve even when the whole-column screen
	// passes. colMax[c] is always the maximum of column c's group maxima.
	groupMax []uint32
}

// maxUpdateGroups is the slot-group count of the grouped fold screen. Eight
// groups cut the folded slots of an admitted row by roughly the same factor
// while costing eight extra comparisons per admitted pair; beyond that the
// screen overhead grows faster than the fold shrinks.
const maxUpdateGroups = 8

// GroupsFor returns the number of slot groups the grouped update screen
// uses for signature size t (callers size HashAllGroupMin's gm with it).
func GroupsFor(t int) int {
	if t < maxUpdateGroups {
		return t
	}
	return maxUpdateGroups
}

// NewMatrix creates a t×cols signature matrix with all slots empty (∞).
func NewMatrix(t, cols int) *Matrix {
	sig := make([]uint32, t*cols)
	for i := range sig {
		sig[i] = emptySlot
	}
	groups := GroupsFor(t)
	colMax := make([]uint32, cols)
	groupMax := make([]uint32, cols*groups)
	for i := range colMax {
		colMax[i] = emptySlot
	}
	for i := range groupMax {
		groupMax[i] = emptySlot
	}
	return &Matrix{t: t, cols: cols, groups: groups, sig: sig, colMax: colMax, groupMax: groupMax}
}

// Groups returns the slot-group count of the grouped update screen,
// GroupsFor(T()).
func (m *Matrix) Groups() int { return m.groups }

// T returns the signature size.
func (m *Matrix) T() int { return m.t }

// Cols returns the number of signatures (skyline points).
func (m *Matrix) Cols() int { return m.cols }

// Column returns the signature of column c (read-only view).
func (m *Matrix) Column(c int) []uint32 {
	return m.sig[c*m.t : (c+1)*m.t : (c+1)*m.t]
}

// UpdateColumn folds one row's hash values hv into column c's signature,
// keeping the per-slot minima (Figure 3, UpdateMatrix). hv may be shorter
// than t (the untouched tail keeps its values); the column's slot-max
// bounds are refreshed either way.
func (m *Matrix) UpdateColumn(c int, hv []uint32) {
	col := m.sig[c*m.t : (c+1)*m.t]
	n := len(hv)
	if n > len(col) {
		n = len(col)
	}
	changed := false
	for i := 0; i < n; i++ {
		if hv[i] < col[i] {
			col[i] = hv[i]
			changed = true
		}
	}
	if !changed {
		// Untouched column, bounds still exact — and the common case even for
		// folds that pass the slot-max screen, so it skips the max recompute.
		return
	}
	m.refreshBounds(c)
}

// refreshBounds recomputes column c's group maxima and whole-column maximum
// from its current slots.
func (m *Matrix) refreshBounds(c int) {
	col := m.sig[c*m.t : (c+1)*m.t]
	gmax := m.groupMax[c*m.groups : (c+1)*m.groups]
	var colMax uint32
	for g := range gmax {
		lo, hi := g*m.t/m.groups, (g+1)*m.t/m.groups
		var gm uint32
		for _, v := range col[lo:hi] {
			if v > gm {
				gm = v
			}
		}
		gmax[g] = gm
		if gm > colMax {
			colMax = gm
		}
	}
	m.colMax[c] = colMax
}

// UpdateColumnBounded is UpdateColumn for callers that know min(hv) — i.e.
// the signature generators, which compute it once per row via HashAllMin.
// When that minimum cannot beat the column's current worst slot the fold is
// skipped entirely; the resulting matrix is bit-identical to folding every
// row unconditionally.
func (m *Matrix) UpdateColumnBounded(c int, hv []uint32, minHv uint32) {
	if minHv >= m.colMax[c] {
		return
	}
	m.UpdateColumn(c, hv)
}

// UpdateColumnGrouped is the finest-grained fold: given the per-group minima
// gm of hv (from HashAllGroupMin) it skips every slot group the row cannot
// improve, touching only the groups where an update is possible. len(gm)
// must equal Groups(). The result is bit-identical to UpdateColumn: a
// skipped group satisfies min(hv[group]) ≥ groupMax ≥ every slot in it.
func (m *Matrix) UpdateColumnGrouped(c int, hv []uint32, gm []uint32, minHv uint32) {
	if minHv >= m.colMax[c] {
		return
	}
	t, groups := m.t, m.groups
	col := m.sig[c*t : (c+1)*t]
	gmax := m.groupMax[c*groups : (c+1)*groups]
	anyChanged := false
	for g := 0; g < groups; g++ {
		if gm[g] >= gmax[g] {
			continue
		}
		lo, hi := g*t/groups, (g+1)*t/groups
		changed := false
		for i := lo; i < hi; i++ {
			if hv[i] < col[i] {
				col[i] = hv[i]
				changed = true
			}
		}
		if !changed {
			continue
		}
		var nm uint32
		for _, v := range col[lo:hi] {
			if v > nm {
				nm = v
			}
		}
		gmax[g] = nm
		anyChanged = true
	}
	if !anyChanged {
		return
	}
	var colMax uint32
	for _, v := range gmax {
		if v > colMax {
			colMax = v
		}
	}
	m.colMax[c] = colMax
}

// FoldStripe folds hv (whose length must be hi−lo) into slots [lo, hi) of
// column c by per-slot minima, WITHOUT refreshing the column's screen
// bounds. It reports whether any slot changed and, when one did, the new
// maximum of the stripe's slots.
//
// This is the write primitive of the slot-striped parallel generators: each
// worker owns a disjoint slot range of every column, so concurrent
// FoldStripe calls on the same column never touch the same memory. The
// matrix's colMax/groupMax screens are stale until the caller invokes
// RefreshBounds — the striped pass keeps its own per-worker stripe maxima
// instead (screening with them is exact for the same reason as
// UpdateColumnBounded, restricted to the stripe).
func (m *Matrix) FoldStripe(c, lo, hi int, hv []uint32) (stripeMax uint32, changed bool) {
	col := m.sig[c*m.t+lo : c*m.t+hi]
	for i, v := range hv {
		if v < col[i] {
			col[i] = v
			changed = true
		}
	}
	if !changed {
		return 0, false
	}
	for _, v := range col {
		if v > stripeMax {
			stripeMax = v
		}
	}
	return stripeMax, true
}

// RefreshBounds recomputes every column's slot-max screen bounds from the
// current slots. Callers that bypassed the bound bookkeeping with FoldStripe
// must invoke it before the matrix is used with the screened folds again;
// afterwards the matrix is indistinguishable from one built through
// UpdateColumn alone.
func (m *Matrix) RefreshBounds() {
	for c := 0; c < m.cols; c++ {
		m.refreshBounds(c)
	}
}

// Clone returns a deep copy of the matrix: the incremental-maintenance path
// patches a private copy of a cached signature matrix (copy-on-write), so the
// original — shared by pointer with every query that already holds it — is
// never mutated.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{t: m.t, cols: m.cols, groups: m.groups}
	c.sig = append([]uint32(nil), m.sig...)
	c.colMax = append([]uint32(nil), m.colMax...)
	c.groupMax = append([]uint32(nil), m.groupMax...)
	return c
}

// ResetColumn empties column c: all slots and its screen bounds return to the
// ∞ sentinel, as if no row had ever been folded into it. The incremental
// delete path resets a column before re-folding its surviving rows.
func (m *Matrix) ResetColumn(c int) {
	col := m.sig[c*m.t : (c+1)*m.t]
	for i := range col {
		col[i] = emptySlot
	}
	gmax := m.groupMax[c*m.groups : (c+1)*m.groups]
	for i := range gmax {
		gmax[i] = emptySlot
	}
	m.colMax[c] = emptySlot
}

// InsertColumn grows the matrix by one empty column at position at (existing
// columns at and beyond shift right). The incremental skyline-maintenance
// path uses it when a point joins the skyline: columns track skyline order,
// so a promotion splices its signature into place.
func (m *Matrix) InsertColumn(at int) {
	if at < 0 || at > m.cols {
		panic("minhash: InsertColumn position out of range")
	}
	t, g := m.t, m.groups
	m.sig = append(m.sig, make([]uint32, t)...)
	copy(m.sig[(at+1)*t:], m.sig[at*t:m.cols*t])
	m.colMax = append(m.colMax, 0)
	copy(m.colMax[at+1:], m.colMax[at:m.cols])
	m.groupMax = append(m.groupMax, make([]uint32, g)...)
	copy(m.groupMax[(at+1)*g:], m.groupMax[at*g:m.cols*g])
	m.cols++
	m.ResetColumn(at)
}

// RemoveColumns drops the columns at the given positions (which must be
// sorted ascending and in range), compacting the survivors left. The
// incremental path uses it when skyline members are demoted by an insert or
// evicted by a delete.
func (m *Matrix) RemoveColumns(at []int) {
	if len(at) == 0 {
		return
	}
	t, g := m.t, m.groups
	w, r := at[0], 0 // write cursor in columns; read cursor in at
	for c := at[0]; c < m.cols; c++ {
		if r < len(at) && at[r] == c {
			r++
			continue
		}
		copy(m.sig[w*t:(w+1)*t], m.sig[c*t:(c+1)*t])
		m.colMax[w] = m.colMax[c]
		copy(m.groupMax[w*g:(w+1)*g], m.groupMax[c*g:(c+1)*g])
		w++
	}
	if r != len(at) {
		panic("minhash: RemoveColumns positions not sorted ascending in range")
	}
	m.cols = w
	m.sig = m.sig[:w*t]
	m.colMax = m.colMax[:w]
	m.groupMax = m.groupMax[:w*g]
}

// ColumnMatchesAny reports whether any slot of column c currently equals the
// corresponding value in hv. When a row is removed from a column's set, its
// hash values can only have mattered where they achieved the slot minimum;
// a false answer proves the column's slots are unchanged by the removal, so
// the incremental delete path skips the recompute. (True is conservative:
// another row may have tied the slot.)
func (m *Matrix) ColumnMatchesAny(c int, hv []uint32) bool {
	col := m.sig[c*m.t : (c+1)*m.t]
	for i, v := range hv {
		if v == col[i] {
			return true
		}
	}
	return false
}

// slotBlock is the number of signature slots the batched estimator streams
// per pass: one block of the probe column stays cache-hot while it is
// compared against every candidate column, so a long signature (t in the
// hundreds) never evicts its own working set between candidates. 512 slots
// are 2 KiB — half an L1 way on anything current.
const slotBlock = 512

// EstimateJs returns the estimated Jaccard similarity between columns i and
// j: the fraction of slots on which their signatures agree. Two slots that
// are both empty (neither point dominates anything hashed so far) agree —
// two empty dominated sets are identical.
//
// The agreement count runs through the SWAR kernel countEqual; the result is
// exactly the scalar count (integer arithmetic, no reordering hazard).
func (m *Matrix) EstimateJs(i, j int) float64 {
	a, b := m.Column(i), m.Column(j)
	return float64(countEqual(a, b)) / float64(m.t)
}

// estimateJsScalar is the reference implementation the kernels are tested
// against slot by slot.
func (m *Matrix) estimateJsScalar(i, j int) float64 {
	a, b := m.Column(i), m.Column(j)
	eq := 0
	for s := range a {
		if a[s] == b[s] {
			eq++
		}
	}
	return float64(eq) / float64(m.t)
}

// swarMinSlots is the signature size below which countEqual dispatches to
// the plain scalar loop: the word-reinterpreting setup (two unsafe slice
// headers plus alignment checks) costs about as much as comparing a dozen
// slots, so tiny signatures were measurably *slower* through the SWAR path
// than through the loop it replaces. Sixteen slots is past the crossover on
// current x86 and arm64 and still below the paper's smallest signature
// (t = 20), so real workloads always take the word path.
const swarMinSlots = 16

// countEqual returns the number of positions where a and b hold the same
// value. a and b must have equal length.
//
// Fast path: when both slices are 8-byte aligned (always the case for even
// signature sizes, including the paper's 20–400 range), slots are compared
// two at a time through 64-bit words — halving the loads, which bound the
// scalar loop — with a branch-free SWAR zero-lane test: for x = wa^wb, a
// 32-bit lane of x is zero exactly where the slots agree, and
// ^((x&^hi)+^hi|x)&hi leaves one sign bit per agreeing lane. Four words (8
// slots) fold into a single popcount by parking each word's sign bits on
// adjacent bit positions. Branch-free matters here: slot agreement is a coin
// flip at mid-range similarities, the worst case for a branchy loop. Small
// (< swarMinSlots) and unaligned inputs dispatch to the scalar loop, where
// the word setup would cost more than it saves.
func countEqual(a, b []uint32) int {
	n := len(a)
	b = b[:n] // one bound for the whole loop
	eq := 0
	s := 0
	if n >= swarMinSlots && uintptr(unsafe.Pointer(&a[0]))&7 == 0 && uintptr(unsafe.Pointer(&b[0]))&7 == 0 {
		nw := n / 2
		wa := unsafe.Slice((*uint64)(unsafe.Pointer(&a[0])), nw)
		wb := unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), nw)
		const hi = 0x8000000080000000
		const lo7 = 0x7FFFFFFF7FFFFFFF
		w := 0
		for ; w+4 <= nw; w += 4 {
			x0 := wa[w] ^ wb[w]
			x1 := wa[w+1] ^ wb[w+1]
			x2 := wa[w+2] ^ wb[w+2]
			x3 := wa[w+3] ^ wb[w+3]
			z0 := ^((x0 & lo7) + lo7 | x0) & hi
			z1 := ^((x1 & lo7) + lo7 | x1) & hi
			z2 := ^((x2 & lo7) + lo7 | x2) & hi
			z3 := ^((x3 & lo7) + lo7 | x3) & hi
			eq += bits.OnesCount64(z0 | z1>>1 | z2>>2 | z3>>3)
		}
		for ; w < nw; w++ {
			x := wa[w] ^ wb[w]
			z := ^((x & lo7) + lo7 | x) & hi
			eq += bits.OnesCount64(z)
		}
		s = nw * 2
	}
	for ; s < n; s++ {
		if a[s] == b[s] {
			eq++
		}
	}
	return eq
}

// EstimateJd returns the estimated Jaccard distance 1 − Js between columns.
func (m *Matrix) EstimateJd(i, j int) float64 {
	return 1 - m.EstimateJs(i, j)
}

// EstimateJsMany estimates the Jaccard similarity of column i against every
// column in js, writing the results into out (len(out) must be at least
// len(js)). The probe column is streamed one slot block at a time against all
// candidates, so column i's block is read once per block instead of once per
// pair — the cache-conscious layout for the selection phase's
// one-against-many distance updates. Each out[c] equals EstimateJs(i, js[c])
// exactly.
func (m *Matrix) EstimateJsMany(i int, js []int, out []float64) {
	a := m.Column(i)
	t := m.t
	if t <= slotBlock {
		// Single block: the probe column fits the streaming window whole.
		for c, j := range js {
			out[c] = float64(countEqual(a, m.Column(j))) / float64(t)
		}
		return
	}
	counts := make([]int, len(js))
	for lo := 0; lo < t; lo += slotBlock {
		hi := lo + slotBlock
		if hi > t {
			hi = t
		}
		ab := a[lo:hi]
		for c, j := range js {
			counts[c] += countEqual(ab, m.Column(j)[lo:hi])
		}
	}
	for c, eq := range counts {
		out[c] = float64(eq) / float64(t)
	}
}

// EstimateJdMany is EstimateJsMany in distance form: out[c] = 1 − Js(i,
// js[c]), each bit-identical to EstimateJd(i, js[c]).
func (m *Matrix) EstimateJdMany(i int, js []int, out []float64) {
	m.EstimateJsMany(i, js, out)
	for c := range js {
		out[c] = 1 - out[c]
	}
}

// MemoryBytes returns the signature storage footprint (4 bytes per slot),
// the quantity plotted in Figure 13(a)-(b).
func (m *Matrix) MemoryBytes() int { return 4 * len(m.sig) }

// SignatureSizeFor returns the signature size t = Θ(ε⁻³ β⁻¹ ln(1/δ))
// sufficient for an (ε, δ)-approximation of Jaccard similarities at
// precision β (Datar & Muthukrishnan, cited as [12] in Section 4.2.1). It is
// a guideline; the paper's experiments use t between 20 and 400.
func SignatureSizeFor(eps, beta, delta float64) (int, error) {
	if eps <= 0 || eps >= 1 || beta <= 0 || beta >= 1 || delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("minhash: parameters out of (0,1): eps=%v beta=%v delta=%v", eps, beta, delta)
	}
	t := math.Ceil(math.Log(1/delta) / (eps * eps * eps * beta))
	return int(t), nil
}
