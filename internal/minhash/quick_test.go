package minhash

import (
	"testing"
	"testing/quick"
)

// TestEstimateSymmetricAndBounded: Js estimates are symmetric and in [0,1]
// for arbitrary update sequences.
func TestEstimateSymmetricAndBounded(t *testing.T) {
	f := func(rowsA, rowsB []uint16) bool {
		fam, _ := NewFamily(32, 5)
		m := NewMatrix(32, 2)
		hv := make([]uint32, 32)
		for _, r := range rowsA {
			fam.HashAll(hv, uint64(r))
			m.UpdateColumn(0, hv)
		}
		for _, r := range rowsB {
			fam.HashAll(hv, uint64(r))
			m.UpdateColumn(1, hv)
		}
		js := m.EstimateJs(0, 1)
		if js < 0 || js > 1 {
			return false
		}
		if m.EstimateJs(1, 0) != js {
			return false
		}
		return m.EstimateJd(0, 1) == 1-js
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestUpdateIdempotent: folding the same rows twice leaves signatures
// unchanged (min is idempotent).
func TestUpdateIdempotent(t *testing.T) {
	f := func(rows []uint16) bool {
		fam, _ := NewFamily(16, 9)
		a := NewMatrix(16, 1)
		b := NewMatrix(16, 1)
		hv := make([]uint32, 16)
		for _, r := range rows {
			fam.HashAll(hv, uint64(r))
			a.UpdateColumn(0, hv)
			b.UpdateColumn(0, hv)
			b.UpdateColumn(0, hv) // twice
		}
		for i := 0; i < 16; i++ {
			if a.Column(0)[i] != b.Column(0)[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestUpdateOrderIndependent: signatures are independent of row order
// (min is commutative and associative).
func TestUpdateOrderIndependent(t *testing.T) {
	f := func(rows []uint16) bool {
		fam, _ := NewFamily(16, 3)
		a := NewMatrix(16, 1)
		b := NewMatrix(16, 1)
		hv := make([]uint32, 16)
		for _, r := range rows {
			fam.HashAll(hv, uint64(r))
			a.UpdateColumn(0, hv)
		}
		for i := len(rows) - 1; i >= 0; i-- {
			fam.HashAll(hv, uint64(rows[i]))
			b.UpdateColumn(0, hv)
		}
		for i := 0; i < 16; i++ {
			if a.Column(0)[i] != b.Column(0)[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSupersetNeverRaisesSlots: adding rows can only lower slot values.
func TestSupersetNeverRaisesSlots(t *testing.T) {
	f := func(rows []uint16, extra uint16) bool {
		fam, _ := NewFamily(16, 7)
		m := NewMatrix(16, 1)
		hv := make([]uint32, 16)
		for _, r := range rows {
			fam.HashAll(hv, uint64(r))
			m.UpdateColumn(0, hv)
		}
		before := append([]uint32{}, m.Column(0)...)
		fam.HashAll(hv, uint64(extra))
		m.UpdateColumn(0, hv)
		for i := range before {
			if m.Column(0)[i] > before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
