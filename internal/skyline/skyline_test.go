package skyline

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"skydiver/internal/data"
	"skydiver/internal/geom"
	"skydiver/internal/rtree"
)

// mustBulkLoadT builds an rtree from a dataset known to be valid, failing
// the test on error.
func mustBulkLoadT(tb testing.TB, ds *data.Dataset) *rtree.Tree {
	tb.Helper()
	tr, err := rtree.BulkLoad(ds)
	if err != nil {
		tb.Fatalf("bulk load: %v", err)
	}
	return tr
}

func TestAlgorithmString(t *testing.T) {
	for algo, want := range map[Algorithm]string{Naive: "naive", BNL: "bnl", SFS: "sfs", BBS: "bbs", Algorithm(99): "unknown"} {
		if algo.String() != want {
			t.Errorf("String() = %q, want %q", algo.String(), want)
		}
	}
}

func TestKnown2DSkyline(t *testing.T) {
	// Classic hotel example: minimize price (x) and distance (y).
	ds, _ := data.FromRows("hotels", [][]float64{
		{1, 9}, // 0: skyline
		{2, 7}, // 1: skyline
		{4, 4}, // 2: skyline
		{5, 6}, // 3: dominated by 2
		{3, 8}, // 4: dominated by 1
		{7, 1}, // 5: skyline
		{8, 2}, // 6: dominated by 5
		{9, 9}, // 7: dominated by all
	})
	want := []int{0, 1, 2, 5}
	for _, algo := range []Algorithm{Naive, BNL, SFS} {
		got := Compute(ds, algo)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%v: skyline = %v, want %v", algo, got, want)
		}
	}
	tr := mustBulkLoadT(t, ds)
	got, err := ComputeBBS(tr)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("bbs: skyline = %v, want %v", got, want)
	}
}

func TestSinglePointAndEmpty(t *testing.T) {
	one, _ := data.FromRows("one", [][]float64{{1, 2}})
	for _, algo := range []Algorithm{Naive, BNL, SFS} {
		if got := Compute(one, algo); len(got) != 1 || got[0] != 0 {
			t.Errorf("%v single point: %v", algo, got)
		}
	}
	empty, _ := data.New("empty", 2, nil)
	for _, algo := range []Algorithm{Naive, BNL, SFS} {
		if got := Compute(empty, algo); len(got) != 0 {
			t.Errorf("%v empty: %v", algo, got)
		}
	}
	tr := mustBulkLoadT(t, empty)
	if got, err := ComputeBBS(tr); err != nil || len(got) != 0 {
		t.Errorf("bbs empty: %v %v", got, err)
	}
}

func TestAllAlgorithmsAgreeContinuous(t *testing.T) {
	cases := []*data.Dataset{
		data.Independent(3000, 2, 1),
		data.Independent(3000, 4, 2),
		data.Anticorrelated(2000, 3, 3),
		data.Correlated(3000, 4, 4),
		data.Clustered(2000, 3, 5, 5),
	}
	for _, ds := range cases {
		t.Run(ds.Name(), func(t *testing.T) {
			want := ComputeNaive(ds)
			for _, algo := range []Algorithm{BNL, SFS} {
				got := Compute(ds, algo)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("%v disagrees with naive: %d vs %d points", algo, len(got), len(want))
				}
			}
			tr := mustBulkLoadT(t, ds)
			got, err := ComputeBBS(tr)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("bbs disagrees with naive: %d vs %d points", len(got), len(want))
			}
		})
	}
}

// keyset renders the skyline as a set of coordinate strings, so that
// algorithms choosing different representatives among duplicate points still
// compare equal.
func keyset(ds *data.Dataset, idx []int) map[string]bool {
	m := make(map[string]bool, len(idx))
	for _, i := range idx {
		m[fmt.Sprint(ds.Point(i))] = true
	}
	return m
}

func TestAllAlgorithmsAgreeWithTies(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	rows := make([][]float64, 4000)
	for i := range rows {
		rows[i] = []float64{float64(rng.Intn(10)), float64(rng.Intn(10)), float64(rng.Intn(10))}
	}
	ds, _ := data.FromRows("quantized", rows)
	want := keyset(ds, ComputeNaive(ds))
	check := func(name string, got []int) {
		t.Helper()
		ks := keyset(ds, got)
		if len(ks) != len(want) {
			t.Fatalf("%s: %d distinct skyline points, want %d", name, len(ks), len(want))
		}
		for k := range ks {
			if !want[k] {
				t.Fatalf("%s: unexpected skyline point %s", name, k)
			}
		}
		// Exactly one representative per distinct point.
		if len(got) != len(ks) {
			t.Fatalf("%s: %d indexes for %d distinct points (duplicates leaked)", name, len(got), len(ks))
		}
	}
	check("bnl", ComputeBNL(ds))
	check("sfs", ComputeSFS(ds))
	tr := mustBulkLoadT(t, ds)
	got, err := ComputeBBS(tr)
	if err != nil {
		t.Fatal(err)
	}
	check("bbs", got)
}

// TestSkylineProperty checks the defining property on random data: no
// skyline point is dominated, and every non-skyline point is dominated by
// (or equal to) some skyline point.
func TestSkylineProperty(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		ds := data.Anticorrelated(1000, 3, seed)
		sky := ComputeSFS(ds)
		inSky := make(map[int]bool, len(sky))
		for _, s := range sky {
			inSky[s] = true
		}
		for _, s := range sky {
			for j := 0; j < ds.Len(); j++ {
				if geom.Dominates(ds.Point(j), ds.Point(s)) {
					t.Fatalf("skyline point %d dominated by %d", s, j)
				}
			}
		}
		for i := 0; i < ds.Len(); i++ {
			if inSky[i] {
				continue
			}
			covered := false
			for _, s := range sky {
				if geom.Dominates(ds.Point(s), ds.Point(i)) || geom.Equal(ds.Point(s), ds.Point(i)) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("non-skyline point %d not dominated by any skyline point", i)
			}
		}
	}
}

// TestSkylineCardinalityTrend: ANT skylines are much larger than IND, which
// are larger than CORR — the driver of the paper's cardinality-explosion
// motivation.
func TestSkylineCardinalityTrend(t *testing.T) {
	n := 20000
	ant := len(ComputeSFS(data.Anticorrelated(n, 4, 9)))
	ind := len(ComputeSFS(data.Independent(n, 4, 9)))
	corr := len(ComputeSFS(data.Correlated(n, 4, 9)))
	if !(ant > 3*ind && ind > 3*corr) {
		t.Errorf("cardinality trend violated: ant=%d ind=%d corr=%d", ant, ind, corr)
	}
}

// TestBBSProgressiveIO: BBS on a strongly correlated dataset should read far
// fewer pages than the tree holds (I/O optimality in spirit).
func TestBBSProgressiveIO(t *testing.T) {
	ds := data.Correlated(50000, 3, 13)
	tr := mustBulkLoadT(t, ds)
	tr.Reopen(0.2)
	tr.ResetStats()
	if _, err := ComputeBBS(tr); err != nil {
		t.Fatal(err)
	}
	if reads := tr.Stats().Reads; reads > int64(tr.NumPages())/2 {
		t.Errorf("BBS read %d of %d pages; expected strong pruning", reads, tr.NumPages())
	}
}

func TestSortedOutput(t *testing.T) {
	ds := data.Independent(5000, 3, 55)
	for _, algo := range []Algorithm{Naive, BNL, SFS} {
		got := Compute(ds, algo)
		if !sort.IntsAreSorted(got) {
			t.Errorf("%v output not sorted", algo)
		}
	}
}

func BenchmarkBNL(b *testing.B) {
	ds := data.Independent(20000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeBNL(ds)
	}
}

func BenchmarkSFS(b *testing.B) {
	ds := data.Independent(20000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeSFS(ds)
	}
}

func BenchmarkBBS(b *testing.B) {
	ds := data.Independent(20000, 4, 1)
	tr := mustBulkLoadT(b, ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeBBS(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func TestComputeDCAgainstNaive(t *testing.T) {
	cases := []*data.Dataset{
		data.Independent(5000, 2, 21),
		data.Independent(5000, 4, 22),
		data.Anticorrelated(3000, 3, 23),
		data.Correlated(5000, 4, 24),
	}
	for _, ds := range cases {
		want := ComputeNaive(ds)
		got := ComputeDC(ds)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s: D&C %d points, naive %d", ds.Name(), len(got), len(want))
		}
	}
}

func TestComputeDCWithTies(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rows := make([][]float64, 5000)
	for i := range rows {
		rows[i] = []float64{float64(rng.Intn(4)), float64(rng.Intn(10)), float64(rng.Intn(10))}
	}
	ds, _ := data.FromRows("dc-ties", rows)
	want := keyset(ds, ComputeNaive(ds))
	got := keyset(ds, ComputeDC(ds))
	if len(got) != len(want) {
		t.Fatalf("D&C %d distinct points, naive %d", len(got), len(want))
	}
	for k := range got {
		if !want[k] {
			t.Fatalf("unexpected skyline point %s", k)
		}
	}
}

func TestComputeDCAllSameFirstCoord(t *testing.T) {
	// Degenerate split: every point shares the first coordinate; the
	// algorithm must fall back rather than recurse forever.
	rng := rand.New(rand.NewSource(5))
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = []float64{7, rng.Float64(), rng.Float64()}
	}
	ds, _ := data.FromRows("flat", rows)
	want := ComputeNaive(ds)
	got := ComputeDC(ds)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("degenerate split broken: %d vs %d", len(got), len(want))
	}
}

func TestBBSProgressiveOrderAndEarlyStop(t *testing.T) {
	ds := data.Independent(5000, 3, 77)
	tr := mustBulkLoadT(t, ds)
	var l1s []float64
	err := ComputeBBSProgressive(tr, func(_ int, p []float64) bool {
		l1s = append(l1s, geom.L1(p))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(l1s) != len(ComputeNaive(ds)) {
		t.Fatal("progressive BBS missed points")
	}
	// Progressiveness: points stream in ascending L1 order.
	for i := 1; i < len(l1s); i++ {
		if l1s[i] < l1s[i-1] {
			t.Fatalf("BBS not progressive: L1 %v after %v", l1s[i], l1s[i-1])
		}
	}
	// Early stop after 3 points.
	count := 0
	tr.ResetStats()
	err = ComputeBBSProgressive(tr, func(int, []float64) bool {
		count++
		return count < 3
	})
	if err != nil || count != 3 {
		t.Fatalf("early stop: count=%d err=%v", count, err)
	}
}

func BenchmarkDC(b *testing.B) {
	ds := data.Independent(20000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeDC(ds)
	}
}
