package skyline

import (
	"sort"

	"skydiver/internal/data"
	"skydiver/internal/geom"
	"skydiver/internal/pager"
)

// ExternalResult is the output of the bounded-memory BNL run.
type ExternalResult struct {
	// Sky holds the skyline indexes, ascending.
	Sky []int
	// Passes is the number of passes over (progressively shrinking)
	// overflow data, including the first pass over the input.
	Passes int
	// IO charges the input scan plus every overflow write and re-read.
	IO pager.Stats
}

// ComputeBNLExternal runs the original bounded-memory block-nested-loops
// skyline of Börzsönyi et al.: a self-organizing window of at most
// windowCap points is compared against the stream; undominated points that
// do not fit spill to an overflow file and are resolved in later passes.
//
// Emission follows the classic timestamp rule: a window point may be output
// at the end of a pass only if nothing spilled to the overflow file before
// it entered the window — otherwise some spilled point was never compared
// against it and the point must be carried into the next pass. Every pass
// either resolves its whole input or emits at least a full window of
// skyline points, so the number of passes is bounded. Overflow writes and
// re-reads are charged through a sequential counter, reproducing the I/O
// regime the paper alludes to when no index exists.
func ComputeBNLExternal(ds *data.Dataset, windowCap int) *ExternalResult {
	if windowCap < 1 {
		windowCap = 1
	}
	res := &ExternalResult{}
	counter := pager.NewSequentialCounter(8*ds.Dims() + 4)
	// input holds dataset indexes still unresolved; starts as the live rows
	// of the file (tombstoned rows are resolved by definition).
	input := make([]int, 0, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		if !ds.Deleted(i) {
			input = append(input, i)
		}
	}
	type winEntry struct {
		idx int
		ts  int // overflow size when the point entered the window
	}
	var sky []int
	for len(input) > 0 {
		res.Passes++
		window := make([]winEntry, 0, windowCap)
		var overflow []int
		for pos, i := range input {
			counter.Touch(pos)
			p := ds.Point(i)
			dominated := false
			for _, w := range window {
				q := ds.Point(w.idx)
				if geom.Dominates(q, p) || (geom.Equal(q, p) && w.idx < i) {
					dominated = true
					break
				}
			}
			// Emitted skyline points are final; checking against them keeps
			// correctness across passes without consuming window budget.
			if !dominated {
				for _, s := range sky {
					q := ds.Point(s)
					if geom.Dominates(q, p) || (geom.Equal(q, p) && s < i) {
						dominated = true
						break
					}
				}
			}
			if dominated {
				continue
			}
			keep := window[:0]
			for _, w := range window {
				if !geom.Dominates(p, ds.Point(w.idx)) {
					keep = append(keep, w)
				}
			}
			window = keep
			if len(window) < windowCap {
				window = append(window, winEntry{idx: i, ts: len(overflow)})
			} else {
				// Window full: spill to the overflow file (one write).
				counter.Touch(len(overflow))
				overflow = append(overflow, i)
			}
		}
		// Emit window points inserted before any spill (they met every
		// unresolved point); carry the rest into the next pass's input.
		next := overflow
		for _, w := range window {
			if w.ts == 0 {
				sky = append(sky, w.idx)
			} else {
				next = append(next, w.idx)
			}
		}
		input = next
	}
	sort.Ints(sky)
	res.Sky = sky
	res.IO = counter.Stats()
	return res
}
