// Package skyline implements the skyline computation substrate: the
// block-nested-loops algorithm (BNL) of Börzsönyi et al., the sort-filter
// skyline (SFS) of Chomicki et al., a naive quadratic reference, and the
// progressive, I/O-optimal branch-and-bound skyline (BBS) of Papadias et al.
// over the aggregate R*-tree — the algorithm the paper singles out as the
// preferred index-based method (Section 2).
//
// All algorithms return the indexes of skyline points in the dataset, sorted
// ascending, under the canonical "smaller is better" orientation.
package skyline

import (
	"container/heap"
	"context"
	"sort"

	"skydiver/internal/data"
	"skydiver/internal/geom"
	"skydiver/internal/pager"
	"skydiver/internal/rtree"
)

// Algorithm selects a skyline computation method.
type Algorithm int

// Supported skyline algorithms.
const (
	// Naive compares all pairs; O(n²), used as a test oracle.
	Naive Algorithm = iota
	// BNL is block-nested-loops with an in-memory window.
	BNL
	// SFS presorts by the L1 norm and filters in one pass.
	SFS
	// BBS is branch-and-bound on an aggregate R*-tree (progressive and
	// I/O-optimal); requires an index.
	BBS
	// DC is divide-and-conquer on the first coordinate.
	DC
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Naive:
		return "naive"
	case BNL:
		return "bnl"
	case SFS:
		return "sfs"
	case BBS:
		return "bbs"
	case DC:
		return "dc"
	default:
		return "unknown"
	}
}

// Compute runs the chosen index-free algorithm on the dataset. For BBS use
// ComputeBBS with a pre-built tree.
func Compute(ds *data.Dataset, algo Algorithm) []int {
	switch algo {
	case BNL:
		return ComputeBNL(ds)
	case SFS:
		return ComputeSFS(ds)
	case DC:
		return ComputeDC(ds)
	default:
		return ComputeNaive(ds)
	}
}

// ComputeNaive compares every pair of points. Quadratic; test oracle only.
func ComputeNaive(ds *data.Dataset) []int {
	n := ds.Len()
	var out []int
	for i := 0; i < n; i++ {
		if ds.Deleted(i) {
			continue
		}
		p := ds.Point(i)
		dominated := false
		for j := 0; j < n && !dominated; j++ {
			if j == i || ds.Deleted(j) {
				continue
			}
			q := ds.Point(j)
			if geom.Dominates(q, p) {
				dominated = true
			}
			// Keep only the first of identical points, so that duplicates do
			// not all enter the skyline.
			if geom.Equal(q, p) && j < i {
				dominated = true
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// ComputeBNL runs block-nested-loops with an unbounded in-memory window,
// which suffices since this reproduction never spills skyline candidates.
func ComputeBNL(ds *data.Dataset) []int {
	n := ds.Len()
	window := make([]int, 0, 64)
next:
	for i := 0; i < n; i++ {
		if ds.Deleted(i) {
			continue
		}
		p := ds.Point(i)
		for _, w := range window {
			q := ds.Point(w)
			if geom.Dominates(q, p) || geom.Equal(q, p) {
				// p loses. Window points are mutually incomparable, so p
				// cannot have dominated any of them either; the window is
				// unchanged.
				continue next
			}
		}
		keep := window[:0]
		for _, w := range window {
			if !geom.Dominates(p, ds.Point(w)) {
				keep = append(keep, w)
			}
		}
		window = append(keep, i)
	}
	sort.Ints(window)
	return window
}

// ComputeSFS presorts points by their L1 norm and filters against the
// accumulated skyline. After sorting, no point can dominate an earlier one,
// so a single forward pass with dominance checks against retained points is
// exact.
func ComputeSFS(ds *data.Dataset) []int {
	n := ds.Len()
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !ds.Deleted(i) {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := geom.L1(ds.Point(order[a])), geom.L1(ds.Point(order[b]))
		if la != lb {
			return la < lb
		}
		return order[a] < order[b]
	})
	var out []int
	for _, i := range order {
		p := ds.Point(i)
		dominated := false
		for _, s := range out {
			q := ds.Point(s)
			if geom.Dominates(q, p) || geom.Equal(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// bbsItem is a priority-queue element of the BBS traversal: either an
// intermediate entry (child != InvalidPage) or a data point.
type bbsItem struct {
	key   float64 // L1 mindist of the entry's MBR
	rect  geom.Rect
	child int64 // page id, or -1 for a data point
	rowID uint32
}

type bbsHeap []bbsItem

func (h bbsHeap) Len() int { return len(h) }

// Less orders by L1 mindist; ties open intermediate entries before accepting
// points and then prefer the smallest row id. With duplicate points this
// makes the oldest equal twin the skyline representative — the same
// tie-break as the scan-order algorithms (Naive, BNL, SFS, DC) and the one
// the incremental maintenance in internal/core relies on: a container whose
// corner ties a point's key may hold an equal twin, so it is expanded first,
// after which every resident twin competes by row id. An entry strictly
// dominated by a point always has a strictly larger key, so the node-first
// tie-break never expands an entry that point ordering would have pruned
// (corner ties aside, which only duplicates produce).
func (h bbsHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	if (h[i].child >= 0) != (h[j].child >= 0) {
		return h[i].child >= 0
	}
	return h[i].rowID < h[j].rowID
}
func (h bbsHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *bbsHeap) Push(x any)        { *h = append(*h, x.(bbsItem)) }
func (h *bbsHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// ComputeBBS runs branch-and-bound skyline over the aggregate R*-tree. It
// expands entries in ascending L1-mindist order, discarding any entry whose
// lower-left corner is dominated by an already-found skyline point; popped
// points whose coordinates are undominated join the skyline progressively.
// I/O is charged through the reader — pass the tree itself for its default
// pool, or a per-query rtree.Session for isolated accounting.
func ComputeBBS(tr rtree.Reader) ([]int, error) {
	return ComputeBBSCtx(context.Background(), tr)
}

// ComputeBBSCtx is ComputeBBS with cancellation, checked before every node
// read (page granularity). A cancelled computation returns the context's
// error; no partial skyline is reported because an incomplete BBS result is
// not a valid skyline subset bound for downstream fingerprinting.
func ComputeBBSCtx(ctx context.Context, tr rtree.Reader) ([]int, error) {
	var sky []int
	err := ComputeBBSProgressiveCtx(ctx, tr, func(rowID int, _ []float64) bool {
		sky = append(sky, rowID)
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Ints(sky)
	return sky, nil
}

// ComputeBBSProgressive streams skyline points as BBS discovers them, in
// ascending L1 order — the progressiveness property the paper credits BBS
// with (Section 2). Returning false from fn stops the computation early,
// e.g. after the first k skyline points.
func ComputeBBSProgressive(tr rtree.Reader, fn func(rowID int, p []float64) bool) error {
	return ComputeBBSProgressiveCtx(context.Background(), tr, fn)
}

// ComputeBBSProgressiveCtx is ComputeBBSProgressive with cancellation,
// checked before every node read so a cancelled traversal returns within one
// page quantum.
func ComputeBBSProgressiveCtx(ctx context.Context, tr rtree.Reader, fn func(rowID int, p []float64) bool) error {
	if tr.Len() == 0 {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	var skyPts [][]float64
	dominatedBySky := func(p []float64) bool {
		for _, s := range skyPts {
			if geom.Dominates(s, p) || geom.Equal(s, p) {
				return true
			}
		}
		return false
	}
	h := &bbsHeap{}
	root, err := tr.ReadNode(tr.Root())
	if err != nil {
		return err
	}
	pushNode := func(n *rtree.Node) {
		for i := range n.Entries {
			e := &n.Entries[i]
			if n.Leaf {
				heap.Push(h, bbsItem{key: geom.L1(e.Point()), rect: e.Rect, child: -1, rowID: e.RowID})
			} else {
				heap.Push(h, bbsItem{key: e.Rect.MinDistL1(), rect: e.Rect, child: int64(e.Child)})
			}
		}
	}
	pushNode(root)
	for h.Len() > 0 {
		it := heap.Pop(h).(bbsItem)
		if dominatedBySky(it.rect.Lo) {
			continue
		}
		if it.child < 0 {
			skyPts = append(skyPts, it.rect.Lo)
			if !fn(int(it.rowID), it.rect.Lo) {
				return nil
			}
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := tr.ReadNode(pager.PageID(it.child))
		if err != nil {
			return err
		}
		pushNode(n)
	}
	return nil
}
