package skyline

import (
	"testing"

	"skydiver/internal/data"
)

func TestStreamRANDSubsetOfSkyline(t *testing.T) {
	for _, ds := range []*data.Dataset{
		data.Independent(3000, 3, 1),
		data.Anticorrelated(2000, 3, 2),
	} {
		truth := map[int]bool{}
		for _, s := range ComputeNaive(ds) {
			truth[s] = true
		}
		res := ComputeStreamRAND(ds, 16, 12, 7)
		if len(res.Sky) == 0 {
			t.Fatalf("%s: streaming found nothing", ds.Name())
		}
		for _, s := range res.Sky {
			if !truth[s] {
				t.Fatalf("%s: false positive %d", ds.Name(), s)
			}
		}
		if res.IO.Faults == 0 || res.Passes == 0 {
			t.Error("stream passes not accounted")
		}
	}
}

// TestStreamRANDConvergesToExact: with enough passes on a small-skyline
// dataset, the stream result is the complete skyline.
func TestStreamRANDConvergesToExact(t *testing.T) {
	ds := data.Correlated(5000, 3, 5)
	want := ComputeNaive(ds)
	res := ComputeStreamRAND(ds, 32, 200, 3)
	if !res.Complete {
		t.Fatalf("stream did not complete in 200 passes (found %d of %d)", len(res.Sky), len(want))
	}
	if len(res.Sky) != len(want) {
		t.Fatalf("complete stream found %d points, want %d", len(res.Sky), len(want))
	}
	for i := range want {
		if res.Sky[i] != want[i] {
			t.Fatalf("skyline mismatch at %d", i)
		}
	}
}

// TestStreamRANDApproximation: tight pass budgets yield partial but clean
// results — the "approximate results" trade-off the paper describes.
func TestStreamRANDApproximation(t *testing.T) {
	ds := data.Anticorrelated(5000, 4, 9)
	full := len(ComputeNaive(ds))
	res := ComputeStreamRAND(ds, 8, 6, 1)
	if res.Complete {
		t.Skip("unexpectedly completed; nothing to check")
	}
	if len(res.Sky) == 0 || len(res.Sky) >= full {
		t.Errorf("expected a strict, non-empty subset: got %d of %d", len(res.Sky), full)
	}
}

// TestStreamRANDMorePassesMoreCoverage: coverage grows with the pass budget.
func TestStreamRANDMorePassesMoreCoverage(t *testing.T) {
	ds := data.Independent(4000, 4, 4)
	few := ComputeStreamRAND(ds, 8, 6, 2)
	many := ComputeStreamRAND(ds, 8, 60, 2)
	if len(many.Sky) < len(few.Sky) {
		t.Errorf("coverage shrank with more passes: %d -> %d", len(few.Sky), len(many.Sky))
	}
}

func TestStreamRANDDeterministic(t *testing.T) {
	ds := data.Independent(2000, 3, 6)
	a := ComputeStreamRAND(ds, 8, 10, 11)
	b := ComputeStreamRAND(ds, 8, 10, 11)
	if len(a.Sky) != len(b.Sky) {
		t.Fatal("non-deterministic result size")
	}
	for i := range a.Sky {
		if a.Sky[i] != b.Sky[i] {
			t.Fatal("non-deterministic result")
		}
	}
}

func TestStreamRANDWindowClamp(t *testing.T) {
	ds := data.Independent(500, 2, 3)
	res := ComputeStreamRAND(ds, 0, 30, 1)
	if len(res.Sky) == 0 {
		t.Error("window clamp broke the stream")
	}
}

func BenchmarkStreamRAND(b *testing.B) {
	ds := data.Independent(20000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeStreamRAND(ds, 16, 9, int64(i))
	}
}
