package skyline

import (
	"sort"

	"skydiver/internal/data"
	"skydiver/internal/geom"
)

// dcCutoff is the subproblem size below which divide-and-conquer falls back
// to the quadratic scan.
const dcCutoff = 64

// ComputeDC computes the skyline by divide and conquer, the second classic
// algorithm of Börzsönyi et al.: split at the median of the first
// coordinate, solve both halves recursively, and filter the worse half's
// skyline against the better half's. Points in the better half can never be
// dominated by points of the worse half, so the merge is one-directional.
func ComputeDC(ds *data.Dataset) []int {
	n := ds.Len()
	idx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !ds.Deleted(i) {
			idx = append(idx, i)
		}
	}
	out := dcSkyline(ds, idx)
	sort.Ints(out)
	return out
}

// dcSkyline returns the skyline of the subset idx (dataset indexes).
func dcSkyline(ds *data.Dataset, idx []int) []int {
	if len(idx) <= dcCutoff {
		return subsetSkyline(ds, idx)
	}
	// Partition at the median of the first coordinate: strictly-better
	// points left, the rest right. Ties all fall right, so equal points can
	// never be split across the halves.
	med := medianFirstCoord(ds, idx)
	var better, worse []int
	for _, i := range idx {
		if ds.Point(i)[0] < med {
			better = append(better, i)
		} else {
			worse = append(worse, i)
		}
	}
	if len(better) == 0 || len(worse) == 0 {
		// Degenerate split (many ties at the median): fall back.
		return subsetSkyline(ds, idx)
	}
	skyBetter := dcSkyline(ds, better)
	skyWorse := dcSkyline(ds, worse)
	out := append([]int{}, skyBetter...)
	for _, w := range skyWorse {
		p := ds.Point(w)
		dominated := false
		for _, b := range skyBetter {
			if geom.Dominates(ds.Point(b), p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, w)
		}
	}
	return out
}

// subsetSkyline is the quadratic scan restricted to a subset, keeping the
// smallest dataset index among identical points.
func subsetSkyline(ds *data.Dataset, idx []int) []int {
	var out []int
	for _, i := range idx {
		p := ds.Point(i)
		dominated := false
		for _, j := range idx {
			if i == j {
				continue
			}
			q := ds.Point(j)
			if geom.Dominates(q, p) || (geom.Equal(q, p) && j < i) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// medianFirstCoord returns the median value of the first coordinate over
// the subset.
func medianFirstCoord(ds *data.Dataset, idx []int) float64 {
	vals := make([]float64, len(idx))
	for i, id := range idx {
		vals[i] = ds.Point(id)[0]
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}
