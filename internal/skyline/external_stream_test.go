package skyline

import (
	"context"
	"testing"

	"skydiver/internal/data"
)

// TestBNLExternalSourceMatchesInMemory pins the tentpole's counter-identity
// contract: the streaming external BNL over a dataset's source view must
// reproduce the in-memory external BNL bit-for-bit — same skyline ids, same
// pass count, same charged I/O — and carry the correct coordinates.
func TestBNLExternalSourceMatchesInMemory(t *testing.T) {
	cases := []struct {
		name   string
		ds     *data.Dataset
		window int
	}{
		{"ind-tight-window", data.Independent(4000, 3, 7), 8},
		{"ind-roomy-window", data.Independent(4000, 3, 7), 512},
		{"ant-multi-pass", data.Anticorrelated(2500, 4, 11), 16},
		{"corr-tiny-sky", data.Correlated(3000, 3, 5), 32},
		{"window-of-one", data.Independent(600, 2, 3), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := ComputeBNLExternal(tc.ds, tc.window)
			got, err := ComputeBNLExternalSource(context.Background(), tc.ds.Source(), tc.window)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Sky) != len(want.Sky) {
				t.Fatalf("skyline size %d, want %d", len(got.Sky), len(want.Sky))
			}
			for i := range want.Sky {
				if got.Sky[i] != want.Sky[i] {
					t.Fatalf("sky[%d] = %d, want %d", i, got.Sky[i], want.Sky[i])
				}
			}
			if got.Passes != want.Passes {
				t.Fatalf("passes %d, want %d", got.Passes, want.Passes)
			}
			if got.IO != want.IO {
				t.Fatalf("IO %+v, want %+v", got.IO, want.IO)
			}
			if len(got.SkyPoints) != len(got.Sky) {
				t.Fatalf("%d points for %d ids", len(got.SkyPoints), len(got.Sky))
			}
			for i, id := range got.Sky {
				p, q := got.SkyPoints[i], tc.ds.Point(id)
				for j := range q {
					if p[j] != q[j] {
						t.Fatalf("point %d dim %d: %v != %v", id, j, p[j], q[j])
					}
				}
			}
		})
	}
}

// TestBNLExternalSourceGenerator runs the streaming BNL directly over a
// generator source (never materialized) and checks the result against the
// in-memory run on the equivalent materialized dataset.
func TestBNLExternalSourceGenerator(t *testing.T) {
	src := data.AnticorrelatedSource(2000, 3, 19)
	ds := data.Anticorrelated(2000, 3, 19)
	want := ComputeBNLExternal(ds, 24)
	got, err := ComputeBNLExternalSource(context.Background(), src, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sky) != len(want.Sky) || got.Passes != want.Passes || got.IO != want.IO {
		t.Fatalf("stream run diverged: %d pts/%d passes/%+v vs %d/%d/%+v",
			len(got.Sky), got.Passes, got.IO, len(want.Sky), want.Passes, want.IO)
	}
	for i := range want.Sky {
		if got.Sky[i] != want.Sky[i] {
			t.Fatalf("sky[%d] = %d, want %d", i, got.Sky[i], want.Sky[i])
		}
	}
}

// TestBNLExternalSourceCancel: a canceled context aborts the run with the
// context's error instead of finishing the scan.
func TestBNLExternalSourceCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ComputeBNLExternalSource(ctx, data.IndependentSource(5000, 3, 1), 8)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
