package skyline

import (
	"math/rand"
	"sort"

	"skydiver/internal/data"
	"skydiver/internal/geom"
	"skydiver/internal/pager"
)

// StreamResult is the output of the randomized streaming skyline.
type StreamResult struct {
	// Sky holds the confirmed skyline indexes found so far, ascending.
	Sky []int
	// Complete reports whether Sky is provably the whole skyline (every
	// point was dominated by or equal to a confirmed skyline point, or is
	// itself confirmed).
	Complete bool
	// Passes is the number of sequential passes performed.
	Passes int
	// IO charges each pass as a sequential scan.
	IO pager.Stats
}

// ComputeStreamRAND is a randomized multi-pass streaming skyline in the
// spirit of Das Sarma et al. (cited as [11] in Section 2): the index-free,
// bounded-memory alternative the paper names for the streaming case, which
// "performs multiple passes over the data returning approximate results".
//
// Each round costs three sequential passes and confirms up to window
// skyline points:
//
//	sample: reservoir-sample `window` candidates among points not yet
//	        dominated by a confirmed skyline point;
//	climb:  replace each candidate by any streamed point dominating it, so
//	        candidates move toward the skyline;
//	verify: candidates that no streamed point dominates are confirmed.
//
// The result is always a subset of the true skyline (the verify pass admits
// no false positives); Complete reports whether the uncovered frontier was
// exhausted, in which case the result is the exact skyline. Memory is
// O(window + |skyline found|); runs are deterministic per seed.
func ComputeStreamRAND(ds *data.Dataset, window, maxPasses int, seed int64) *StreamResult {
	if window < 1 {
		window = 1
	}
	r := rand.New(rand.NewSource(seed))
	counter := pager.NewSequentialCounter(8*ds.Dims() + 4)
	res := &StreamResult{}
	n := ds.Len()
	confirmed := make([]int, 0, 64)
	coveredBy := func(p []float64) bool {
		for _, s := range confirmed {
			q := ds.Point(s)
			if geom.Dominates(q, p) || geom.Equal(q, p) {
				return true
			}
		}
		return false
	}
	for res.Passes < maxPasses {
		// Sample pass: reservoir over the uncovered frontier.
		res.Passes++
		cand := make([]int, 0, window)
		seen := 0
		for i := 0; i < n; i++ {
			counter.Touch(i)
			if ds.Deleted(i) || coveredBy(ds.Point(i)) {
				continue
			}
			seen++
			if len(cand) < window {
				cand = append(cand, i)
			} else if j := r.Intn(seen); j < window {
				cand[j] = i
			}
		}
		if seen == 0 {
			res.Complete = true
			break
		}
		if res.Passes >= maxPasses {
			break
		}
		// Climb pass: candidates follow dominators toward the skyline.
		res.Passes++
		for i := 0; i < n; i++ {
			counter.Touch(i)
			if ds.Deleted(i) {
				continue
			}
			p := ds.Point(i)
			for c := range cand {
				if geom.Dominates(p, ds.Point(cand[c])) {
					cand[c] = i
				}
			}
		}
		if res.Passes >= maxPasses {
			break
		}
		// Verify pass: confirm candidates nothing dominates (first index
		// wins among duplicates, matching the other algorithms).
		res.Passes++
		alive := make([]bool, len(cand))
		for i := range alive {
			alive[i] = true
		}
		for i := 0; i < n; i++ {
			counter.Touch(i)
			if ds.Deleted(i) {
				continue
			}
			p := ds.Point(i)
			for c := range cand {
				if !alive[c] {
					continue
				}
				cp := ds.Point(cand[c])
				if geom.Dominates(p, cp) || (geom.Equal(p, cp) && i < cand[c]) {
					alive[c] = false
				}
			}
		}
		for c := range cand {
			if alive[c] {
				confirmed = append(confirmed, cand[c])
			}
		}
		confirmed = dedupInts(confirmed)
	}
	sort.Ints(confirmed)
	res.Sky = confirmed
	res.IO = counter.Stats()
	return res
}

func dedupInts(a []int) []int {
	seen := make(map[int]bool, len(a))
	out := a[:0]
	for _, v := range a {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
