package skyline

import (
	"fmt"
	"testing"

	"skydiver/internal/data"
)

func TestBNLExternalMatchesNaive(t *testing.T) {
	cases := []struct {
		ds  *data.Dataset
		cap int
	}{
		{data.Independent(3000, 3, 1), 4},
		{data.Independent(3000, 3, 1), 1},
		{data.Anticorrelated(1500, 3, 2), 8},
		{data.Anticorrelated(1500, 3, 2), 1000000}, // effectively in-memory
		{data.Correlated(3000, 4, 3), 2},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s-cap%d", tc.ds.Name(), tc.cap), func(t *testing.T) {
			want := ComputeNaive(tc.ds)
			got := ComputeBNLExternal(tc.ds, tc.cap)
			if fmt.Sprint(got.Sky) != fmt.Sprint(want) {
				t.Fatalf("external BNL: %d points, naive %d", len(got.Sky), len(want))
			}
			if got.Passes < 1 || got.IO.Reads == 0 {
				t.Error("accounting missing")
			}
		})
	}
}

func TestBNLExternalWithTies(t *testing.T) {
	rows := make([][]float64, 0, 2000)
	for i := 0; i < 2000; i++ {
		rows = append(rows, []float64{float64(i % 7), float64((i * 13) % 7), float64((i * 29) % 7)})
	}
	ds, _ := data.FromRows("ext-ties", rows)
	want := keyset(ds, ComputeNaive(ds))
	got := ComputeBNLExternal(ds, 3)
	ks := keyset(ds, got.Sky)
	if len(ks) != len(want) || len(got.Sky) != len(ks) {
		t.Fatalf("ties: %d indexes / %d distinct, want %d", len(got.Sky), len(ks), len(want))
	}
	for k := range ks {
		if !want[k] {
			t.Fatalf("unexpected point %s", k)
		}
	}
}

// TestBNLExternalPassBehaviour: a window big enough for the whole skyline
// finishes in one pass; tiny windows on skyline-heavy data need several and
// pay more I/O.
func TestBNLExternalPassBehaviour(t *testing.T) {
	ds := data.Anticorrelated(2000, 3, 7)
	m := len(ComputeNaive(ds))
	big := ComputeBNLExternal(ds, m+10)
	if big.Passes != 1 {
		t.Errorf("big window took %d passes", big.Passes)
	}
	small := ComputeBNLExternal(ds, 4)
	if small.Passes <= 1 {
		t.Errorf("small window took %d passes", small.Passes)
	}
	if small.IO.Faults <= big.IO.Faults {
		t.Errorf("small window should pay more I/O: %d vs %d", small.IO.Faults, big.IO.Faults)
	}
}

func TestBNLExternalWindowClamp(t *testing.T) {
	ds := data.Independent(100, 2, 5)
	got := ComputeBNLExternal(ds, 0)
	want := ComputeNaive(ds)
	if fmt.Sprint(got.Sky) != fmt.Sprint(want) {
		t.Error("window clamp broke correctness")
	}
}

func BenchmarkBNLExternal(b *testing.B) {
	ds := data.Independent(20000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeBNLExternal(ds, 64)
	}
}
