package skyline

import (
	"context"
	"errors"

	"skydiver/internal/data"
	"skydiver/internal/rtree"
)

// ComputeAnyCtx computes the skyline of ds with any algorithm through one
// entry point: the index-free algorithms (Naive, BNL, SFS, DC) scan the
// dataset directly, BBS traverses the supplied reader — typically a
// per-query or per-shard rtree.Session, so cancellation and fault injection
// flow through the session's I/O path. The sharded execution layer uses it
// to run the same algorithm on every shard regardless of kind.
//
// The index-free algorithms are not internally cancellable; the context is
// checked once before they run (they are in-memory and fast on shard-sized
// inputs). BBS polls the context at page granularity as usual.
func ComputeAnyCtx(ctx context.Context, ds *data.Dataset, algo Algorithm, tr rtree.Reader) ([]int, error) {
	if algo == BBS {
		if tr == nil {
			return nil, errors.New("skyline: BBS requires an index reader")
		}
		return ComputeBBSCtx(ctx, tr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return Compute(ds, algo), nil
}
