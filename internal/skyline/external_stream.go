package skyline

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"skydiver/internal/data"
	"skydiver/internal/geom"
	"skydiver/internal/pager"
)

// ExternalStreamResult is the output of the streaming bounded-memory BNL run. Unlike
// ExternalResult it carries the skyline coordinates too: the input was never
// materialized, so the skyline points buffered during the passes are the
// only copy the caller can hand to downstream phases.
type ExternalStreamResult struct {
	// Sky holds the skyline row ids (source positions), ascending.
	Sky []int
	// SkyPoints[i] is the coordinates of row Sky[i].
	SkyPoints [][]float64
	// Passes is the number of passes, including the first over the input.
	Passes int
	// IO charges the input scan plus every overflow write and re-read.
	IO pager.Stats
}

// carryRow is a window survivor carried into the next pass in memory (there
// are at most windowCap of them, so this never breaks the memory bound).
type carryRow struct {
	id int
	p  []float64
}

// ComputeBNLExternalSource is ComputeBNLExternal over a streaming row
// source: the same block-nested-loops algorithm, window discipline,
// timestamp emission rule and sequential I/O accounting, but the unresolved
// overflow between passes lives in a real temporary spill file instead of an
// in-memory index list. Memory is bounded by the window plus the skyline
// itself — an IND-10M input never resides in RAM.
//
// Row ids are source positions. The source must be tombstone-free (streams
// come from generators or on-disk files, which have no deletions); for an
// in-memory mutable dataset use ComputeBNLExternal. Counters are
// bit-identical to the in-memory run on the same rows, which the tests pin.
// Cancellation is polled once per input page.
func ComputeBNLExternalSource(ctx context.Context, src data.Source, windowCap int) (*ExternalStreamResult, error) {
	if windowCap < 1 {
		windowCap = 1
	}
	d := src.Dims()
	counter := pager.NewSequentialCounter(8*d + 4)
	pageQuantum := counter.RecordsPerPage()
	res := &ExternalStreamResult{}
	if err := src.Reset(); err != nil {
		return nil, err
	}

	type winEntry struct {
		id int
		p  []float64
		ts int // overflow size when the point entered the window
	}

	var skyIDs []int
	var skyPts [][]float64
	var carry []carryRow // window leftovers of the previous pass
	var spill *spillFile // overflow records of the previous pass
	defer func() {
		if spill != nil {
			spill.discard()
		}
	}()

	recBuf := make([]byte, 8+8*d)
	row := make([]float64, d)
	for pass := 0; ; pass++ {
		spilled := 0
		if spill != nil {
			spilled = spill.count
		}
		var inputTotal int
		if pass == 0 {
			inputTotal = src.Len()
		} else {
			inputTotal = spilled + len(carry)
		}
		if inputTotal == 0 {
			break
		}
		res.Passes++
		window := make([]winEntry, 0, windowCap)
		var next *spillFile // overflow being written this pass
		var spillRd *bufio.Reader
		if spill != nil {
			rd, err := spill.reader()
			if err != nil {
				return nil, err
			}
			spillRd = rd
		}
		for pos := 0; pos < inputTotal; pos++ {
			if pos%pageQuantum == 0 && pos > 0 {
				if err := ctx.Err(); err != nil {
					if next != nil {
						next.discard()
					}
					return nil, err
				}
			}
			counter.Touch(pos)
			// Fetch the pos-th input row: the source on the first pass;
			// afterwards the spill file, then the in-memory carries.
			var id int
			var p []float64
			switch {
			case pass == 0:
				r, err := src.Next()
				if err != nil {
					if next != nil {
						next.discard()
					}
					return nil, fmt.Errorf("skyline: stream row %d: %w", pos, err)
				}
				id, p = pos, r
			case pos < spilled:
				if _, err := io.ReadFull(spillRd, recBuf); err != nil {
					if next != nil {
						next.discard()
					}
					return nil, fmt.Errorf("skyline: read overflow row %d: %w", pos, err)
				}
				id = int(binary.LittleEndian.Uint64(recBuf))
				for j := 0; j < d; j++ {
					row[j] = math.Float64frombits(binary.LittleEndian.Uint64(recBuf[8+8*j:]))
				}
				p = row
			default:
				c := carry[pos-spilled]
				id, p = c.id, c.p
			}

			dominated := false
			for _, w := range window {
				if geom.Dominates(w.p, p) || (geom.Equal(w.p, p) && w.id < id) {
					dominated = true
					break
				}
			}
			// Emitted skyline points are final; checking against them keeps
			// correctness across passes without consuming window budget.
			if !dominated {
				for si, q := range skyPts {
					if geom.Dominates(q, p) || (geom.Equal(q, p) && skyIDs[si] < id) {
						dominated = true
						break
					}
				}
			}
			if dominated {
				continue
			}
			keep := window[:0]
			for _, w := range window {
				if !geom.Dominates(p, w.p) {
					keep = append(keep, w)
				}
			}
			window = keep
			if len(window) < windowCap {
				cp := append([]float64(nil), p...)
				ts := 0
				if next != nil {
					ts = next.count
				}
				window = append(window, winEntry{id: id, p: cp, ts: ts})
			} else {
				// Window full: spill to the overflow file (one write).
				if next == nil {
					nf, err := newSpillFile()
					if err != nil {
						return nil, err
					}
					next = nf
				}
				counter.Touch(next.count)
				if err := next.write(recBuf, id, p); err != nil {
					next.discard()
					return nil, err
				}
			}
		}
		if spill != nil {
			spill.discard()
			spill = nil
		}
		// Emit window points inserted before any spill (they met every
		// unresolved point); carry the rest into the next pass's input.
		carry = carry[:0]
		for _, w := range window {
			if w.ts == 0 {
				skyIDs = append(skyIDs, w.id)
				skyPts = append(skyPts, w.p)
			} else {
				carry = append(carry, carryRow{id: w.id, p: w.p})
			}
		}
		if next != nil {
			if err := next.finish(); err != nil {
				return nil, err
			}
		}
		spill = next
		if spill == nil && len(carry) == 0 {
			break
		}
	}

	// Sort skyline ids ascending, keeping points aligned.
	ord := make([]int, len(skyIDs))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return skyIDs[ord[a]] < skyIDs[ord[b]] })
	res.Sky = make([]int, len(ord))
	res.SkyPoints = make([][]float64, len(ord))
	for i, j := range ord {
		res.Sky[i] = skyIDs[j]
		res.SkyPoints[i] = skyPts[j]
	}
	res.IO = counter.Stats()
	return res, nil
}

// spillFile is one pass's overflow: fixed-size records of row id plus
// coordinates in an unlinked-on-discard temporary file.
type spillFile struct {
	f     *os.File
	bw    *bufio.Writer
	count int
}

func newSpillFile() (*spillFile, error) {
	f, err := os.CreateTemp("", "skydiver-bnl-*.ovf")
	if err != nil {
		return nil, fmt.Errorf("skyline: create overflow file: %w", err)
	}
	return &spillFile{f: f, bw: bufio.NewWriterSize(f, 1<<16)}, nil
}

func (s *spillFile) write(recBuf []byte, id int, p []float64) error {
	binary.LittleEndian.PutUint64(recBuf, uint64(id))
	for j, v := range p {
		binary.LittleEndian.PutUint64(recBuf[8+8*j:], math.Float64bits(v))
	}
	if _, err := s.bw.Write(recBuf); err != nil {
		return fmt.Errorf("skyline: write overflow: %w", err)
	}
	s.count++
	return nil
}

// finish flushes the writer, sealing the file for reading next pass.
func (s *spillFile) finish() error {
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("skyline: flush overflow: %w", err)
	}
	return nil
}

// reader rewinds the file and returns a buffered reader over its records.
func (s *spillFile) reader() (*bufio.Reader, error) {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("skyline: rewind overflow: %w", err)
	}
	return bufio.NewReaderSize(s.f, 1<<16), nil
}

// discard closes and removes the file.
func (s *spillFile) discard() {
	name := s.f.Name()
	s.f.Close()
	os.Remove(name)
}
