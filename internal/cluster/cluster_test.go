package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"skydiver/internal/core"
	"skydiver/internal/data"
	"skydiver/internal/minhash"
	"skydiver/internal/pager"
)

func testSpec() DatasetSpec {
	return DatasetSpec{Gen: GenAnticorrelated, N: 300, Dims: 3, Seed: 11}
}

// buildLocal regenerates the coordinator-side dataset and plan the same way
// production does, so worker-side copies must agree bit for bit.
func buildLocal(t *testing.T, spec DatasetSpec, sharder string, shards int) (*data.Dataset, *core.ShardPlan) {
	t.Helper()
	ds, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sh, err := SharderByName(sharder)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.BuildShardPlan(context.Background(), ds, sh, shards, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds, plan
}

// startWorkers brings up n in-process workers on httptest servers.
func startWorkers(t *testing.T, n int) ([]*Worker, []string) {
	t.Helper()
	workers := make([]*Worker, n)
	urls := make([]string, n)
	for i := range workers {
		w, err := NewWorker(WorkerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		workers[i] = w
		urls[i] = srv.URL
	}
	return workers, urls
}

func wantFingerprint(t *testing.T, plan *core.ShardPlan, ds *data.Dataset, q Query) *core.Fingerprint {
	t.Helper()
	fam, err := minhash.NewFamily(q.T, q.HashSeed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.SigGenShardedCtx(context.Background(), plan, ds, fam, 0)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func sameFingerprint(t *testing.T, tag string, got, want *core.Fingerprint) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: nil fingerprint", tag)
	}
	if len(got.DomScore) != len(want.DomScore) {
		t.Fatalf("%s: %d columns, want %d", tag, len(got.DomScore), len(want.DomScore))
	}
	for c := range want.DomScore {
		if got.DomScore[c] != want.DomScore[c] {
			t.Fatalf("%s: DomScore[%d] = %v, want %v", tag, c, got.DomScore[c], want.DomScore[c])
		}
		gc, wc := got.Matrix.Column(c), want.Matrix.Column(c)
		for s := range wc {
			if gc[s] != wc[s] {
				t.Fatalf("%s: col %d slot %d = %d, want %d", tag, c, s, gc[s], wc[s])
			}
		}
	}
	if got.IO != want.IO {
		t.Fatalf("%s: IO %+v, want %+v", tag, got.IO, want.IO)
	}
}

// TestRemoteFingerprintBitIdentical is the acceptance pin: with a healthy
// fleet, the remote fold equals the in-process sharded fold — and therefore
// the monolithic pass — bit for bit, for both sharders and shard counts
// {1, 2, 4}, including the synthetic scan accounting.
func TestRemoteFingerprintBitIdentical(t *testing.T) {
	_, urls := startWorkers(t, 2)
	spec := testSpec()
	for _, sharder := range []string{"grid", "angle"} {
		for _, shards := range []int{1, 2, 4} {
			ds, plan := buildLocal(t, spec, sharder, shards)
			ex, err := New(Config{Workers: urls})
			if err != nil {
				t.Fatal(err)
			}
			q := Query{Spec: spec, Sharder: sharder, Shards: shards, T: 32, HashSeed: 7}
			got, out, err := ex.Fingerprint(context.Background(), q, plan, ds)
			if err != nil {
				t.Fatalf("%s/n=%d: %v", sharder, shards, err)
			}
			if out.Remote != shards || out.Local != 0 || len(out.Missing) != 0 {
				t.Fatalf("%s/n=%d: outcome %+v, want all %d shards remote", sharder, shards, out, shards)
			}
			if !out.SkylineVerified {
				t.Fatalf("%s/n=%d: skyline not verified", sharder, shards)
			}
			sameFingerprint(t, fmt.Sprintf("%s/n=%d", sharder, shards), got, wantFingerprint(t, plan, ds, q))
		}
	}
}

// TestRemoteFailoverOnDeadPrimary kills one of two workers outright: every
// shard it owned fails over to the replica and the answer stays exact.
func TestRemoteFailoverOnDeadPrimary(t *testing.T) {
	_, urls := startWorkers(t, 2)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from here on
	spec := testSpec()
	ds, plan := buildLocal(t, spec, "grid", 4)
	ex, err := New(Config{Workers: []string{dead.URL, urls[1]}, MaxRetries: 1, BaseDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Spec: spec, Sharder: "grid", Shards: 4, T: 32, HashSeed: 7}
	got, out, err := ex.Fingerprint(context.Background(), q, plan, ds)
	if err != nil {
		t.Fatal(err)
	}
	if out.Remote != 4 || len(out.Missing) != 0 {
		t.Fatalf("outcome %+v, want all 4 shards served remotely via failover", out)
	}
	if out.Failovers == 0 {
		t.Fatalf("outcome %+v, want failovers > 0", out)
	}
	sameFingerprint(t, "dead-primary", got, wantFingerprint(t, plan, ds, q))
}

// TestRemoteWireFaultsStayExact drives the injected-fault envelope: the
// primary worker corrupts every response byte stream, so every shard it owns
// burns its retry budget and fails over — and the merged result is still bit
// identical.
func TestRemoteWireFaultsStayExact(t *testing.T) {
	workers, urls := startWorkers(t, 2)
	workers[0].SetFaults(WireFaultPolicy{Corrupt: 1, Seed: 3})
	spec := testSpec()
	ds, plan := buildLocal(t, spec, "grid", 4)
	ex, err := New(Config{Workers: urls, MaxRetries: 1, BaseDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Spec: spec, Sharder: "grid", Shards: 4, T: 32, HashSeed: 7}
	got, out, err := ex.Fingerprint(context.Background(), q, plan, ds)
	if err != nil {
		t.Fatal(err)
	}
	if out.Remote != 4 || out.Retries == 0 || out.Failovers == 0 {
		t.Fatalf("outcome %+v, want 4 remote shards with retries and failovers", out)
	}
	sameFingerprint(t, "corrupt-primary", got, wantFingerprint(t, plan, ds, q))
	if st := workers[0].Stats(); st.WireFault.Corrupts == 0 {
		t.Fatalf("worker 0 injected no corruption: %+v", st.WireFault)
	}
}

// TestRemoteDropFaultsFailover: a worker that severs every connection looks
// like a transport failure; shards fail over and stay exact.
func TestRemoteDropFaultsFailover(t *testing.T) {
	workers, urls := startWorkers(t, 2)
	workers[0].SetFaults(WireFaultPolicy{Drop: 1, Seed: 5})
	spec := testSpec()
	ds, plan := buildLocal(t, spec, "grid", 2)
	ex, err := New(Config{Workers: urls, MaxRetries: 1, BaseDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Spec: spec, Sharder: "grid", Shards: 2, T: 16, HashSeed: 1}
	got, out, err := ex.Fingerprint(context.Background(), q, plan, ds)
	if err != nil {
		t.Fatal(err)
	}
	if out.Remote != 2 || out.Failovers == 0 {
		t.Fatalf("outcome %+v, want both shards remote via failover", out)
	}
	sameFingerprint(t, "drop-primary", got, wantFingerprint(t, plan, ds, q))
}

// TestRemoteLocalFallbackWhenFleetDead: with every worker unreachable the
// ladder bottoms out at local recompute — the answer is exact, served
// entirely by the coordinator, and reported as such.
func TestRemoteLocalFallbackWhenFleetDead(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	spec := testSpec()
	ds, plan := buildLocal(t, spec, "grid", 4)
	ex, err := New(Config{Workers: []string{dead.URL}, MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Spec: spec, Sharder: "grid", Shards: 4, T: 32, HashSeed: 7}
	got, out, err := ex.Fingerprint(context.Background(), q, plan, ds)
	if err != nil {
		t.Fatal(err)
	}
	if out.Local != 4 || out.Remote != 0 || len(out.Missing) != 0 {
		t.Fatalf("outcome %+v, want all 4 shards local", out)
	}
	sameFingerprint(t, "fleet-dead", got, wantFingerprint(t, plan, ds, q))
}

// TestRemoteNoLocalFallbackReportsMissing: with local recompute disabled and
// the fleet dead, the query surfaces ErrShardUnavailable naming every shard
// instead of silently recomputing.
func TestRemoteNoLocalFallbackReportsMissing(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	spec := testSpec()
	ds, plan := buildLocal(t, spec, "grid", 2)
	ex, err := New(Config{Workers: []string{dead.URL}, MaxRetries: 0, NoLocalFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Spec: spec, Sharder: "grid", Shards: 2, T: 16, HashSeed: 1}
	_, out, err := ex.Fingerprint(context.Background(), q, plan, ds)
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("err = %v, want ErrShardUnavailable", err)
	}
	if len(out.Missing) != 2 || out.MissingList() != "0,1" {
		t.Fatalf("outcome %+v, want both shards missing", out)
	}
}

// TestRemoteNoLocalFallbackFailoverStillExact: NoLocalFallback only removes
// the coordinator rung; a live replica still makes the answer exact.
func TestRemoteNoLocalFallbackFailoverStillExact(t *testing.T) {
	workers, urls := startWorkers(t, 2)
	workers[0].SetFaults(WireFaultPolicy{Fail: 1, Seed: 9})
	spec := testSpec()
	ds, plan := buildLocal(t, spec, "grid", 2)
	ex, err := New(Config{Workers: urls, MaxRetries: 0, NoLocalFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Spec: spec, Sharder: "grid", Shards: 2, T: 16, HashSeed: 1}
	got, out, err := ex.Fingerprint(context.Background(), q, plan, ds)
	if err != nil {
		t.Fatal(err)
	}
	if out.Remote != 2 || len(out.Missing) != 0 || out.Failovers == 0 {
		t.Fatalf("outcome %+v, want both shards remote via failover", out)
	}
	sameFingerprint(t, "nofallback-failover", got, wantFingerprint(t, plan, ds, q))
}

// TestRemoteEpochSkewServedLocally: a mutated coordinator (epoch > 0) never
// touches the network — the whole plan is served locally and the workers see
// no traffic.
func TestRemoteEpochSkewServedLocally(t *testing.T) {
	workers, urls := startWorkers(t, 2)
	spec := testSpec()
	ds, plan := buildLocal(t, spec, "grid", 4)
	ex, err := New(Config{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Spec: spec, Epoch: 3, Sharder: "grid", Shards: 4, T: 32, HashSeed: 7}
	got, out, err := ex.Fingerprint(context.Background(), q, plan, ds)
	if err != nil {
		t.Fatal(err)
	}
	if out.Local != 4 || out.Remote != 0 || out.SkylineVerified {
		t.Fatalf("outcome %+v, want all shards local without skyline verification", out)
	}
	sameFingerprint(t, "epoch-skew", got, wantFingerprint(t, plan, ds, q))
	for i, w := range workers {
		if st := w.Stats(); st.Skylines != 0 || st.Folds != 0 {
			t.Fatalf("worker %d served traffic on a skewed epoch: %+v", i, st)
		}
	}
}

// TestRemoteHedging: a slow primary plus a fixed hedge delay races a
// duplicate on the replica; the fast copy wins and the answer stays exact.
func TestRemoteHedging(t *testing.T) {
	workers, urls := startWorkers(t, 2)
	workers[0].SetFaults(WireFaultPolicy{Delay: 300 * time.Millisecond, DelayRate: 1})
	spec := testSpec()
	ds, plan := buildLocal(t, spec, "grid", 2)
	ex, err := New(Config{Workers: urls, HedgeAfter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Spec: spec, Sharder: "grid", Shards: 2, T: 16, HashSeed: 1}
	got, out, err := ex.Fingerprint(context.Background(), q, plan, ds)
	if err != nil {
		t.Fatal(err)
	}
	if out.Hedges == 0 {
		t.Fatalf("outcome %+v, want hedged requests", out)
	}
	if out.Remote != 2 || len(out.Missing) != 0 {
		t.Fatalf("outcome %+v, want both shards remote", out)
	}
	sameFingerprint(t, "hedged", got, wantFingerprint(t, plan, ds, q))
}

// TestRemoteBreakerFastFails: repeated failures trip the per-node breaker;
// subsequent queries fast-fail into the fallback rungs instead of paying
// connection timeouts, and the answers stay exact throughout.
func TestRemoteBreakerFastFails(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	spec := testSpec()
	ds, plan := buildLocal(t, spec, "grid", 4)
	ex, err := New(Config{
		Workers:    []string{dead.URL},
		MaxRetries: 0,
		Breaker:    pager.BreakerPolicy{Window: 4, MinSamples: 2, TripRatio: 0.5, Cooldown: time.Minute, Probes: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Spec: spec, Sharder: "grid", Shards: 4, T: 16, HashSeed: 1}
	for round := 0; round < 2; round++ {
		got, out, err := ex.Fingerprint(context.Background(), q, plan, ds)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if out.Local != 4 {
			t.Fatalf("round %d: outcome %+v, want all local", round, out)
		}
		sameFingerprint(t, fmt.Sprintf("breaker round %d", round), got, wantFingerprint(t, plan, ds, q))
	}
	st := ex.Stats()
	if st.FastFails == 0 {
		t.Fatalf("stats %+v, want breaker fast-fails after the first round tripped it", st)
	}
	if st.Nodes[0].Breaker != "open" {
		t.Fatalf("node breaker %q, want open", st.Nodes[0].Breaker)
	}
}

// TestWorkerRejectsBadRequests pins the worker's client-error surface: bad
// epoch → 409, malformed addressing → 400, wrong method → 405.
func TestWorkerRejectsBadRequests(t *testing.T) {
	_, urls := startWorkers(t, 1)
	post := func(body any) *http.Response {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := http.Post(urls[0]+PathSkyline, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	spec := testSpec()
	if resp := post(ShardRequest{Spec: spec, Epoch: 2, Shards: 2, Shard: 0}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("epoch 2: status %d, want 409", resp.StatusCode)
	}
	if resp := post(ShardRequest{Spec: spec, Shards: 2, Shard: 5}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad shard index: status %d, want 400", resp.StatusCode)
	}
	if resp := post(ShardRequest{Spec: DatasetSpec{Gen: "nope", N: 10, Dims: 2}, Shards: 1, Shard: 0}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad generator: status %d, want 400", resp.StatusCode)
	}
	huge := spec
	huge.N = 100_000_000
	if resp := post(ShardRequest{Spec: huge, Shards: 1, Shard: 0}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized spec: status %d, want 400", resp.StatusCode)
	}
	resp, err := http.Get(urls[0] + PathSkyline)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", resp.StatusCode)
	}
}

// TestWorkerFaultsEndpoint sets and clears the wire-fault policy remotely.
func TestWorkerFaultsEndpoint(t *testing.T) {
	workers, urls := startWorkers(t, 1)
	set := func(policy string, wantStatus int) {
		t.Helper()
		raw, _ := json.Marshal(map[string]string{"policy": policy})
		resp, err := http.Post(urls[0]+PathFaults, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("POST /faults %q: status %d, want %d", policy, resp.StatusCode, wantStatus)
		}
	}
	set("drop=0.5,delay=10ms,seed=4", http.StatusOK)
	if st := workers[0].Stats(); st.WireFault.Policy != "drop=0.5,delay=10ms,seed=4" {
		t.Fatalf("policy = %q after set", st.WireFault.Policy)
	}
	set("", http.StatusOK)
	if st := workers[0].Stats(); st.WireFault.Policy != "" {
		t.Fatalf("policy = %q after clear", st.WireFault.Policy)
	}
	set("drop=2", http.StatusBadRequest)
	set("bogus", http.StatusBadRequest)
}

// TestWorkerDrain: a draining worker sheds shard requests with 503 and
// reports unhealthy, while /stats stays reachable.
func TestWorkerDrain(t *testing.T) {
	workers, urls := startWorkers(t, 1)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if left := workers[0].Drain(ctx); left != 0 {
		t.Fatalf("drain left %d in flight", left)
	}
	raw, _ := json.Marshal(ShardRequest{Spec: testSpec(), Shards: 1, Shard: 0})
	resp, err := http.Post(urls[0]+PathSkyline, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining shard request: status %d, want 503", resp.StatusCode)
	}
	hr, err := http.Get(urls[0] + PathHealth)
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining health: status %d, want 503", hr.StatusCode)
	}
}

// TestMatrixWireRoundTrip pins the matrix encoding and its corruption
// detection.
func TestMatrixWireRoundTrip(t *testing.T) {
	m := minhash.NewMatrix(3, 2)
	m.UpdateColumn(0, []uint32{5, 10, 15})
	m.UpdateColumn(1, []uint32{1, 2, 3})
	sig, crc := EncodeMatrix(m)
	got, err := DecodeMatrix(sig, 3, 2, crc)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		gc, wc := got.Column(c), m.Column(c)
		for s := range wc {
			if gc[s] != wc[s] {
				t.Fatalf("col %d slot %d = %d, want %d", c, s, gc[s], wc[s])
			}
		}
	}
	if _, err := DecodeMatrix(sig, 3, 2, crc+1); !errors.Is(err, ErrChecksum) {
		t.Fatalf("bad crc: err = %v, want ErrChecksum", err)
	}
	if _, err := DecodeMatrix(sig, 3, 3, crc); !errors.Is(err, ErrChecksum) {
		t.Fatalf("bad dims: err = %v, want ErrChecksum", err)
	}
	if _, err := DecodeMatrix("!!!", 3, 2, crc); !errors.Is(err, ErrChecksum) {
		t.Fatalf("bad base64: err = %v, want ErrChecksum", err)
	}
}

// TestParseWireFaultPolicyRoundTrip pins the policy string format.
func TestParseWireFaultPolicyRoundTrip(t *testing.T) {
	for _, s := range []string{
		"",
		"drop=0.1",
		"drop=0.1,fail=0.2,corrupt=0.05,delay=20ms,seed=7",
		"delay=1s,delayrate=0.5",
	} {
		p, err := ParseWireFaultPolicy(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		back, err := ParseWireFaultPolicy(p.String())
		if err != nil {
			t.Fatalf("%q → %q: %v", s, p.String(), err)
		}
		if back != p {
			t.Fatalf("%q: round-trip %+v != %+v", s, back, p)
		}
	}
	for _, s := range []string{"drop=2", "nope=1", "drop", "delay=xyz"} {
		if _, err := ParseWireFaultPolicy(s); err == nil {
			t.Fatalf("%q: want error", s)
		}
	}
}

// TestDatasetSpecValidate pins spec validation and key stability.
func TestDatasetSpecValidate(t *testing.T) {
	if err := (DatasetSpec{Gen: GenIndependent, N: 10, Dims: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []DatasetSpec{
		{Gen: "XYZ", N: 10, Dims: 2},
		{Gen: GenIndependent, N: 0, Dims: 2},
		{Gen: GenIndependent, N: 10, Dims: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("%+v: want error", bad)
		}
	}
	if _, err := SharderByName("mystery"); err == nil {
		t.Fatal("unknown sharder: want error")
	}
	if _, err := New(Config{}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("empty worker list: err = %v, want ErrNoWorkers", err)
	}
}
