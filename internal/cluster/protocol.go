// protocol.go defines the wire shapes of the two shard RPCs and the
// checksum/encoding helpers both sides share. Everything rides JSON; the
// signature matrix is packed as base64 little-endian uint32 slots (column
// major) because a 100×m matrix as a JSON number array would dominate the
// response size. Every payload carries a CRC so wire corruption — injected
// or real — surfaces as a retryable checksum error instead of silently
// skewed signatures.
package cluster

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"skydiver/internal/minhash"
)

// Wire endpoints served by a Worker.
const (
	// PathHealth reports liveness and drain state.
	PathHealth = "/healthz"
	// PathStats reports the worker's counters.
	PathStats = "/stats"
	// PathSkyline computes one shard's local skyline.
	PathSkyline = "/shard/skyline"
	// PathSigFold computes one shard's signature contribution.
	PathSigFold = "/shard/sigfold"
	// PathFaults installs or clears the worker's wire-fault policy.
	PathFaults = "/faults"
)

// ShardRequest addresses one shard of one dataset version. The same request
// shape serves both RPCs; the signature fields (T, HashSeed, Sky) matter
// only for PathSigFold.
type ShardRequest struct {
	// Spec names the dataset; the worker regenerates it on first use.
	Spec DatasetSpec `json:"spec"`
	// Epoch is the coordinator's mutation epoch. Workers only hold pristine
	// regenerated datasets (epoch 0); any other value is answered with 409 so
	// stale signatures can never enter a merge.
	Epoch uint64 `json:"epoch"`
	// Sharder names the partitioning scheme ("grid", "angle").
	Sharder string `json:"sharder"`
	// Shards is the total shard count; Shard is this request's index.
	Shards int `json:"shards"`
	Shard  int `json:"shard"`

	// T is the signature size and HashSeed the MinHash family seed.
	T        int   `json:"t,omitempty"`
	HashSeed int64 `json:"hash_seed,omitempty"`
	// Sky is the merged global skyline (ascending global row ids) the fold
	// runs against. Carrying the full list — not a hash — lets a worker serve
	// folds for skylines that differ from its own plan's (the coordinator
	// never needs that for exact answers, but a reduced skyline is how a
	// degraded coordinator could still use workers).
	Sky []int `json:"sky,omitempty"`
}

// Validate checks the request's shard addressing.
func (r ShardRequest) Validate() error {
	if err := r.Spec.Validate(); err != nil {
		return err
	}
	if r.Shards < 1 {
		return fmt.Errorf("cluster: non-positive shard count %d", r.Shards)
	}
	if r.Shard < 0 || r.Shard >= r.Shards {
		return fmt.Errorf("cluster: shard index %d out of [0, %d)", r.Shard, r.Shards)
	}
	return nil
}

// SkylineResponse is PathSkyline's reply: the shard's local skyline in
// ascending global row ids.
type SkylineResponse struct {
	Rows []int `json:"rows"`
	// Checksum is RowsChecksum(Rows); the coordinator verifies it before
	// merging.
	Checksum uint32 `json:"crc"`
}

// FoldResponse is PathSigFold's reply: the shard's signature contribution.
type FoldResponse struct {
	// T and Cols are the matrix dimensions, echoed for validation.
	T    int `json:"t"`
	Cols int `json:"cols"`
	// Sig is the packed signature matrix (EncodeMatrix).
	Sig string `json:"sig"`
	// DomScore is the shard's domination-score contribution per column.
	// Scores are integral counts, so the JSON float64 round-trip is exact.
	DomScore []float64 `json:"dom_score"`
	// Scanned is how many rows the shard's fold hashed — its share of the
	// coordinator's synthetic scan accounting.
	Scanned int `json:"scanned"`
	// Checksum covers the raw signature bytes (before base64).
	Checksum uint32 `json:"crc"`
}

// errorReply is the JSON body of every worker error response.
type errorReply struct {
	Error string `json:"error"`
}

// RowsChecksum is the CRC-32 (IEEE) of the row ids as little-endian uint64s.
func RowsChecksum(rows []int) uint32 {
	buf := make([]byte, 8*len(rows))
	for i, r := range rows {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(r))
	}
	return crc32.ChecksumIEEE(buf)
}

// matrixBytes packs the matrix column-major as little-endian uint32 slots.
func matrixBytes(m *minhash.Matrix) []byte {
	t, cols := m.T(), m.Cols()
	buf := make([]byte, 4*t*cols)
	for c := 0; c < cols; c++ {
		col := m.Column(c)
		off := c * t * 4
		for s, v := range col {
			binary.LittleEndian.PutUint32(buf[off+4*s:], v)
		}
	}
	return buf
}

// EncodeMatrix packs a signature matrix for the wire, returning the base64
// payload and the checksum of the raw bytes.
func EncodeMatrix(m *minhash.Matrix) (sig string, crc uint32) {
	buf := matrixBytes(m)
	return base64.StdEncoding.EncodeToString(buf), crc32.ChecksumIEEE(buf)
}

// DecodeMatrix unpacks a wire matrix, verifying dimensions and checksum. The
// slots are folded into a fresh matrix with UpdateColumn, which also rebuilds
// the screening bounds the fold kernels rely on.
func DecodeMatrix(sig string, t, cols int, crc uint32) (*minhash.Matrix, error) {
	if t < 1 || cols < 0 {
		return nil, fmt.Errorf("cluster: bad matrix dimensions %d×%d", t, cols)
	}
	buf, err := base64.StdEncoding.DecodeString(sig)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrChecksum, err)
	}
	if len(buf) != 4*t*cols {
		return nil, fmt.Errorf("%w: matrix payload %d bytes, want %d", ErrChecksum, len(buf), 4*t*cols)
	}
	if got := crc32.ChecksumIEEE(buf); got != crc {
		return nil, fmt.Errorf("%w: matrix crc %08x, want %08x", ErrChecksum, got, crc)
	}
	m := minhash.NewMatrix(t, cols)
	col := make([]uint32, t)
	for c := 0; c < cols; c++ {
		off := c * t * 4
		for s := range col {
			col[s] = binary.LittleEndian.Uint32(buf[off+4*s:])
		}
		m.UpdateColumn(c, col)
	}
	return m, nil
}
