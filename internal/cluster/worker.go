// worker.go is the shard worker: a stateless-by-construction HTTP service
// that regenerates datasets from their specs, builds shard plans on demand,
// and serves per-shard skyline and signature-fold requests. It reuses the
// serving tier's middleware stack (httpx panic recovery and drain gate,
// admission control, per-request deadlines) so a worker degrades the same
// way the front-end server does: sheds with 429 + Retry-After under
// overload, turns handler panics into clean 500s, and drains gracefully on
// shutdown.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"skydiver/internal/admission"
	"skydiver/internal/core"
	"skydiver/internal/data"
	"skydiver/internal/httpx"
	"skydiver/internal/minhash"
	"skydiver/internal/shard"
)

// SharderByName resolves a wire sharder name to its implementation.
func SharderByName(name string) (shard.Sharder, error) {
	switch name {
	case "", shard.Grid{}.Name():
		return shard.Grid{}, nil
	case shard.Angular{}.Name():
		return shard.Angular{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown sharder %q", name)
	}
}

// WorkerConfig configures a Worker. The zero value is usable.
type WorkerConfig struct {
	// Admission, when non-zero, gates the shard endpoints behind an
	// admission limiter; shed requests get 429 + Retry-After.
	Admission admission.Policy
	// DefaultTimeout bounds shard work when the request carries no
	// ?timeout= (default 30s); MaxTimeout clamps explicit ones (default
	// 2 min).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetryAfter is the backoff hint on 429 responses (default 50ms).
	RetryAfter time.Duration
	// MaxDatasetN caps the cardinality a spec may ask this worker to
	// materialize (default 2,000,000) — a worker should not be OOM-able by a
	// single malformed request.
	MaxDatasetN int
	// Faults is the initial wire-fault policy (normally zero; chaos
	// harnesses install one at runtime via POST /faults).
	Faults WireFaultPolicy
	// Logf receives worker logs; nil discards them.
	Logf func(format string, args ...any)
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 50 * time.Millisecond
	}
	if c.MaxDatasetN == 0 {
		c.MaxDatasetN = 2_000_000
	}
	return c
}

// WorkerStats is the /stats payload.
type WorkerStats struct {
	Skylines  int64 `json:"skylines"`
	Folds     int64 `json:"folds"`
	Sheds     int64 `json:"sheds"`
	Errors    int64 `json:"errors"`
	Panics    int64 `json:"panics"`
	Datasets  int   `json:"datasets"`
	Draining  bool  `json:"draining"`
	WireFault struct {
		Policy string `json:"policy,omitempty"`
		WireFaultStats
	} `json:"wire_faults"`
	Admission *admission.Stats `json:"admission,omitempty"`
}

// Worker serves shard work over HTTP. Create with NewWorker, mount Handler.
type Worker struct {
	cfg  WorkerConfig
	gate httpx.DrainGate
	lim  *admission.Limiter

	faults atomic.Pointer[wireInjector] // nil = disabled

	mu       sync.Mutex
	datasets map[string]*workerDataset

	skylines, folds, sheds, errors, panics atomic.Int64
}

// workerDataset is a regenerated dataset plus its cached shard plans.
type workerDataset struct {
	once sync.Once
	ds   *data.Dataset
	err  error

	mu    sync.Mutex
	plans map[string]*planEntry
}

// planEntry single-flights one (sharder, shards) plan build.
type planEntry struct {
	once sync.Once
	plan *core.ShardPlan
	err  error
}

// NewWorker creates a worker. The admission policy, when set, is validated.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	cfg = cfg.withDefaults()
	w := &Worker{cfg: cfg, datasets: make(map[string]*workerDataset)}
	if cfg.Admission != (admission.Policy{}) {
		lim, err := admission.New(cfg.Admission)
		if err != nil {
			return nil, err
		}
		w.lim = lim
	}
	if cfg.Faults.Enabled() {
		w.faults.Store(newWireInjector(cfg.Faults))
	}
	return w, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// SetFaults installs (or, with a zero policy, removes) the wire-fault
// injector. Also reachable remotely via POST /faults.
func (w *Worker) SetFaults(p WireFaultPolicy) {
	if p.Enabled() {
		w.faults.Store(newWireInjector(p))
	} else {
		w.faults.Store(nil)
	}
}

// BeginDrain sheds new shard requests; in-flight ones finish.
func (w *Worker) BeginDrain() { w.gate.BeginDrain() }

// Drain flips the gate and waits for in-flight shard work, returning the
// number still running when ctx expired (0 on a clean drain).
func (w *Worker) Drain(ctx context.Context) int {
	w.gate.BeginDrain()
	return w.gate.Wait(ctx)
}

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStats {
	var s WorkerStats
	s.Skylines = w.skylines.Load()
	s.Folds = w.folds.Load()
	s.Sheds = w.sheds.Load()
	s.Errors = w.errors.Load()
	s.Panics = w.panics.Load()
	s.Draining = w.gate.IsDraining()
	w.mu.Lock()
	s.Datasets = len(w.datasets)
	w.mu.Unlock()
	if in := w.faults.Load(); in != nil {
		s.WireFault.Policy = in.p.String()
		s.WireFault.WireFaultStats = in.stats()
	}
	if w.lim != nil {
		st := w.lim.Stats()
		s.Admission = &st
	}
	return s
}

// Handler returns the worker's HTTP handler: panic recovery outermost, then
// (for the shard endpoints only) wire-fault injection, drain gating and
// admission.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathHealth, w.handleHealth)
	mux.HandleFunc(PathStats, w.handleStats)
	mux.HandleFunc(PathFaults, w.handleFaults)
	mux.Handle(PathSkyline, w.shardEndpoint(w.handleSkyline))
	mux.Handle(PathSigFold, w.shardEndpoint(w.handleSigFold))
	return httpx.Recover(mux, httpx.RecoverOptions{
		Logf:    w.cfg.Logf,
		OnPanic: func(any) { w.panics.Add(1) },
		Body:    func(p any) any { return errorReply{Error: fmt.Sprintf("internal error: %v", p)} },
	})
}

// shardEndpoint wraps a shard handler with the worker's robustness stack:
// wire faults (outermost, so injected drops and corruption affect real
// replies), the drain gate, and admission control.
func (w *Worker) shardEndpoint(h http.HandlerFunc) http.Handler {
	inner := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.writeError(rw, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
			return
		}
		if !w.gate.Enter() {
			w.unavailable(rw, "draining")
			return
		}
		defer w.gate.Exit()
		if w.lim != nil {
			if err := w.lim.Acquire(r.Context()); err != nil {
				w.sheds.Add(1)
				rw.Header().Set("Retry-After", retryAfterSeconds(w.cfg.RetryAfter))
				w.writeError(rw, http.StatusTooManyRequests, err)
				return
			}
			defer w.lim.Release()
		}
		h(rw, r)
	})
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if in := w.faults.Load(); in != nil {
			in.apply(inner, rw, r)
			return
		}
		inner.ServeHTTP(rw, r)
	})
}

func retryAfterSeconds(d time.Duration) string {
	return strconv.Itoa(int((d + time.Second - 1) / time.Second))
}

func (w *Worker) unavailable(rw http.ResponseWriter, why string) {
	rw.Header().Set("Retry-After", retryAfterSeconds(w.cfg.RetryAfter))
	w.writeError(rw, http.StatusServiceUnavailable, fmt.Errorf("worker %s", why))
}

func (w *Worker) writeError(rw http.ResponseWriter, status int, err error) {
	if status >= 500 {
		w.errors.Add(1)
	}
	httpx.WriteJSON(rw, status, errorReply{Error: err.Error()})
}

func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	if w.gate.IsDraining() {
		httpx.WriteJSON(rw, http.StatusServiceUnavailable, map[string]any{"ok": false, "reason": "draining"})
		return
	}
	httpx.WriteJSON(rw, http.StatusOK, map[string]any{"ok": true})
}

func (w *Worker) handleStats(rw http.ResponseWriter, r *http.Request) {
	httpx.WriteJSON(rw, http.StatusOK, w.Stats())
}

// handleFaults installs a wire-fault policy at runtime:
// POST /faults {"policy": "drop=0.1,seed=7"}. An empty policy clears it.
func (w *Worker) handleFaults(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.writeError(rw, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var body struct {
		Policy string `json:"policy"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		w.writeError(rw, http.StatusBadRequest, fmt.Errorf("bad faults body: %v", err))
		return
	}
	p, err := ParseWireFaultPolicy(body.Policy)
	if err != nil {
		w.writeError(rw, http.StatusBadRequest, err)
		return
	}
	w.SetFaults(p)
	w.logf("wire-fault policy set to %q", p.String())
	httpx.WriteJSON(rw, http.StatusOK, map[string]any{"policy": p.String()})
}

// decodeShardRequest parses and validates the common request shape, and
// derives the handler context from ?timeout=.
func (w *Worker) decodeShardRequest(rw http.ResponseWriter, r *http.Request) (ShardRequest, context.Context, context.CancelFunc, bool) {
	var req ShardRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		w.writeError(rw, http.StatusBadRequest, fmt.Errorf("bad shard request: %v", err))
		return req, nil, nil, false
	}
	if err := req.Validate(); err != nil {
		w.writeError(rw, http.StatusBadRequest, err)
		return req, nil, nil, false
	}
	if req.Spec.N > w.cfg.MaxDatasetN {
		w.writeError(rw, http.StatusBadRequest,
			fmt.Errorf("cluster: spec cardinality %d exceeds worker cap %d", req.Spec.N, w.cfg.MaxDatasetN))
		return req, nil, nil, false
	}
	if req.Epoch != 0 {
		// Workers only hold pristine regenerated datasets. A non-zero epoch
		// means the coordinator's copy has been mutated since generation, so
		// this worker's answer would be stale: refuse with 409 and let the
		// coordinator recompute locally.
		w.writeError(rw, http.StatusConflict,
			fmt.Errorf("cluster: epoch %d not served; workers hold only epoch 0", req.Epoch))
		return req, nil, nil, false
	}
	ctx, cancel, err := httpx.Timeout(r, w.cfg.DefaultTimeout, w.cfg.MaxTimeout)
	if err != nil {
		w.writeError(rw, http.StatusBadRequest, err)
		return req, nil, nil, false
	}
	return req, ctx, cancel, true
}

// plan returns (building and caching as needed) the shard plan for the
// request's dataset and partitioning. Builds single-flight per key.
func (w *Worker) plan(ctx context.Context, req ShardRequest) (*core.ShardPlan, *data.Dataset, error) {
	key := req.Spec.Key()
	w.mu.Lock()
	wd := w.datasets[key]
	if wd == nil {
		wd = &workerDataset{plans: make(map[string]*planEntry)}
		w.datasets[key] = wd
	}
	w.mu.Unlock()
	wd.once.Do(func() {
		wd.ds, wd.err = req.Spec.Build()
		if wd.err == nil {
			w.logf("dataset %s materialized (%d rows)", key, wd.ds.Len())
		}
	})
	if wd.err != nil {
		return nil, nil, wd.err
	}
	sh, err := SharderByName(req.Sharder)
	if err != nil {
		return nil, nil, err
	}
	planKey := fmt.Sprintf("%s/%d", sh.Name(), req.Shards)
	wd.mu.Lock()
	pe := wd.plans[planKey]
	if pe == nil {
		pe = &planEntry{}
		wd.plans[planKey] = pe
	}
	wd.mu.Unlock()
	pe.once.Do(func() {
		pe.plan, pe.err = core.BuildShardPlan(ctx, wd.ds, sh, req.Shards, 0, nil)
		if pe.err != nil {
			// Drop the failed entry so a later request (e.g. after a
			// cancellation) can rebuild instead of caching the error forever.
			wd.mu.Lock()
			delete(wd.plans, planKey)
			wd.mu.Unlock()
		}
	})
	return pe.plan, wd.ds, pe.err
}

// handleSkyline computes one shard's local skyline.
func (w *Worker) handleSkyline(rw http.ResponseWriter, r *http.Request) {
	req, ctx, cancel, ok := w.decodeShardRequest(rw, r)
	if !ok {
		return
	}
	defer cancel()
	plan, _, err := w.plan(ctx, req)
	if err != nil {
		w.shardError(rw, ctx, err)
		return
	}
	rows := plan.Shards[req.Shard].Sky
	w.skylines.Add(1)
	httpx.WriteJSON(rw, http.StatusOK, SkylineResponse{Rows: rows, Checksum: RowsChecksum(rows)})
}

// handleSigFold computes one shard's signature contribution against the
// request's merged skyline. When that skyline matches the worker's own plan
// (the always-true case for exact coordination), the fold runs over the
// cached classification tree; otherwise it falls back to the direct
// tree-free fold, which serves any skyline.
func (w *Worker) handleSigFold(rw http.ResponseWriter, r *http.Request) {
	req, ctx, cancel, ok := w.decodeShardRequest(rw, r)
	if !ok {
		return
	}
	defer cancel()
	if req.T < 1 {
		w.writeError(rw, http.StatusBadRequest, fmt.Errorf("cluster: non-positive signature size %d", req.T))
		return
	}
	if len(req.Sky) == 0 {
		w.writeError(rw, http.StatusBadRequest, fmt.Errorf("cluster: sigfold request carries no skyline"))
		return
	}
	fam, err := minhash.NewFamily(req.T, req.HashSeed)
	if err != nil {
		w.writeError(rw, http.StatusBadRequest, err)
		return
	}
	plan, ds, err := w.plan(ctx, req)
	if err != nil {
		w.shardError(rw, ctx, err)
		return
	}
	var (
		fp      *core.Fingerprint
		scanned int
	)
	if equalRows(req.Sky, plan.Sky) {
		fp, err = plan.ShardFingerprint(ctx, req.Shard, fam)
		scanned = plan.ShardScanned(req.Shard)
	} else {
		fp, scanned, err = core.ShardFingerprintLocal(ctx, ds, req.Sky, plan.Shards[req.Shard].Rows, fam)
	}
	if err != nil {
		w.shardError(rw, ctx, err)
		return
	}
	sig, crc := EncodeMatrix(fp.Matrix)
	w.folds.Add(1)
	httpx.WriteJSON(rw, http.StatusOK, FoldResponse{
		T:        req.T,
		Cols:     len(req.Sky),
		Sig:      sig,
		DomScore: fp.DomScore,
		Scanned:  scanned,
		Checksum: crc,
	})
}

// shardError maps a shard computation failure: client-caused cancellations
// become 503 (the coordinator may retry elsewhere), everything else 500.
func (w *Worker) shardError(rw http.ResponseWriter, ctx context.Context, err error) {
	if ctx.Err() != nil {
		w.unavailable(rw, fmt.Sprintf("cancelled: %v", err))
		return
	}
	w.writeError(rw, http.StatusInternalServerError, err)
}

func equalRows(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
