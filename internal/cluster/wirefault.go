// wirefault.go injects transport-level faults into a worker's shard
// endpoints — the network twin of the pager's storage FaultPolicy. Policies
// are set per worker at runtime (POST /faults), so a chaos harness can make
// one node drop connections, delay, corrupt response bytes or fail with 5xx
// mid-wave and watch the coordinator's retry/hedge/failover envelope absorb
// it. Injection is deterministic per seed.
package cluster

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skydiver/internal/retry"
)

// WireFaultPolicy configures injected transport faults on a worker's shard
// endpoints. Each request draws one outcome; at most one fault kind applies
// per request, screened in order drop → fail → corrupt → delay.
type WireFaultPolicy struct {
	// Drop is the probability the connection is severed with no response.
	Drop float64
	// Fail is the probability of an injected 500 response.
	Fail float64
	// Corrupt is the probability a response byte is flipped in flight.
	Corrupt float64
	// Delay is added before handling when DelayRate hits (DelayRate defaults
	// to 1 when a Delay is set with no explicit rate).
	Delay     time.Duration
	DelayRate float64
	// Seed drives the fault lottery.
	Seed int64
}

// ParseWireFaultPolicy decodes a comma-separated key=value wire-fault
// description, e.g. "drop=0.1,fail=0.2,corrupt=0.1,delay=20ms,seed=7".
// Keys: drop, fail, corrupt, delay, delayrate, seed. An empty string is the
// zero (disabled) policy.
func ParseWireFaultPolicy(s string) (WireFaultPolicy, error) {
	var p WireFaultPolicy
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return p, fmt.Errorf("cluster: bad fault field %q, want key=value", kv)
		}
		var err error
		switch strings.ToLower(strings.TrimSpace(k)) {
		case "drop":
			p.Drop, err = parseProb(v)
		case "fail":
			p.Fail, err = parseProb(v)
		case "corrupt":
			p.Corrupt, err = parseProb(v)
		case "delay":
			p.Delay, err = time.ParseDuration(strings.TrimSpace(v))
		case "delayrate":
			p.DelayRate, err = parseProb(v)
		case "seed":
			p.Seed, err = strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		default:
			return p, fmt.Errorf("cluster: unknown fault key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("cluster: fault field %q: %v", kv, err)
		}
	}
	if p.Delay > 0 && p.DelayRate == 0 {
		p.DelayRate = 1
	}
	return p, nil
}

func parseProb(v string) (float64, error) {
	f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("probability %v out of [0, 1]", f)
	}
	return f, nil
}

// Enabled reports whether any fault kind can fire.
func (p WireFaultPolicy) Enabled() bool {
	return p.Drop > 0 || p.Fail > 0 || p.Corrupt > 0 || (p.Delay > 0 && p.DelayRate > 0)
}

// String renders the policy in ParseWireFaultPolicy's format.
func (p WireFaultPolicy) String() string {
	if !p.Enabled() {
		return ""
	}
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", k, v))
		}
	}
	add("drop", p.Drop)
	add("fail", p.Fail)
	add("corrupt", p.Corrupt)
	if p.Delay > 0 {
		parts = append(parts, fmt.Sprintf("delay=%v", p.Delay))
		if p.DelayRate != 1 {
			add("delayrate", p.DelayRate)
		}
	}
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	return strings.Join(parts, ",")
}

// WireFaultStats counts injected faults by kind.
type WireFaultStats struct {
	Drops    int64 `json:"drops"`
	Fails    int64 `json:"fails"`
	Corrupts int64 `json:"corrupts"`
	Delays   int64 `json:"delays"`
}

// wireInjector draws fault outcomes deterministically per seed.
type wireInjector struct {
	p  WireFaultPolicy
	mu sync.Mutex
	r  *rand.Rand

	drops, fails, corrupts, delays atomic.Int64
}

func newWireInjector(p WireFaultPolicy) *wireInjector {
	return &wireInjector{p: p, r: rand.New(rand.NewSource(p.Seed))}
}

func (in *wireInjector) stats() WireFaultStats {
	return WireFaultStats{
		Drops:    in.drops.Load(),
		Fails:    in.fails.Load(),
		Corrupts: in.corrupts.Load(),
		Delays:   in.delays.Load(),
	}
}

// wireFault is one request's drawn outcome.
type wireFault int

const (
	faultNone wireFault = iota
	faultDrop
	faultFail
	faultCorrupt
	faultDelay
)

// draw picks at most one fault for a request. The screening order matches
// the policy doc: drop, then fail, then corrupt, then delay.
func (in *wireInjector) draw() wireFault {
	in.mu.Lock()
	u := in.r.Float64()
	in.mu.Unlock()
	switch {
	case u < in.p.Drop:
		return faultDrop
	case u < in.p.Drop+in.p.Fail:
		return faultFail
	case u < in.p.Drop+in.p.Fail+in.p.Corrupt:
		return faultCorrupt
	case in.p.Delay > 0 && u < in.p.Drop+in.p.Fail+in.p.Corrupt+in.p.DelayRate:
		return faultDelay
	default:
		return faultNone
	}
}

// apply executes the drawn fault around the inner handler. Drop severs the
// connection via http.ErrAbortHandler (which httpx.Recover deliberately
// re-panics); fail writes a 500 without running the handler; corrupt wraps
// the writer so one response byte is flipped; delay sleeps (honoring the
// request context) before handling.
func (in *wireInjector) apply(next http.Handler, w http.ResponseWriter, r *http.Request) {
	switch in.draw() {
	case faultDrop:
		in.drops.Add(1)
		panic(http.ErrAbortHandler)
	case faultFail:
		in.fails.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintln(w, `{"error": "injected wire fault"}`)
	case faultCorrupt:
		in.corrupts.Add(1)
		next.ServeHTTP(&corruptWriter{ResponseWriter: w, target: corruptOffset}, r)
	case faultDelay:
		in.delays.Add(1)
		_ = retry.Sleep(r.Context(), in.p.Delay)
		next.ServeHTTP(w, r)
	default:
		next.ServeHTTP(w, r)
	}
}

// corruptOffset is the response-byte index a corrupt fault flips. Shallow
// enough that every shard-endpoint body (the smallest is an empty shard's
// skyline reply, ~30 bytes) contains it, so a corrupt draw always corrupts.
// Whether the flip lands in JSON structure (parse error) or payload bytes
// (checksum mismatch), the coordinator sees a retryable failure.
const corruptOffset = 20

// corruptWriter flips one bit pattern (XOR 0x20) in the byte stream at the
// target offset.
type corruptWriter struct {
	http.ResponseWriter
	n      int
	target int
	done   bool
}

func (w *corruptWriter) Write(b []byte) (int, error) {
	if !w.done && len(b) > 0 {
		if idx := w.target - w.n; idx < len(b) {
			if idx < 0 {
				idx = 0
			}
			c := append([]byte(nil), b...)
			c[idx] ^= 0x20
			w.done = true
			n, err := w.ResponseWriter.Write(c)
			w.n += n
			return n, err
		}
	}
	n, err := w.ResponseWriter.Write(b)
	w.n += n
	return n, err
}
