// Package cluster is the multi-node shard execution backend: a coordinator
// (Executor) dispatches per-shard skyline and signature-fold work to shard
// worker processes (Worker, served by cmd/skyshardd) over HTTP/JSON and
// merges the replies with the same exact operators the single-process
// partitioned path uses — per-slot signature minima, domination-score sums,
// and the strict-dominance skyline merge — so remote results are
// bit-identical to in-process execution whenever every shard is served.
//
// Workers hold no coordinator state: each request names the dataset by its
// generator spec (distribution, cardinality, dimensionality, seed) and the
// worker regenerates it deterministically on first use. Generators emit
// min-preferred data, so the worker's copy equals the coordinator's
// canonical orientation value-for-value, and SigGen's global-row-id hashing
// makes the signature universes line up with no coordinate exchange at all.
//
// The resilience envelope — per-shard deadlines, jittered retries, hedged
// duplicates, per-node circuit breakers, replica failover, local recompute,
// and (opt-in) degraded partial answers — lives entirely in the Executor;
// workers stay simple and stateless.
package cluster

import (
	"fmt"

	"skydiver/internal/data"
	"skydiver/internal/geom"
)

// Generator names accepted in a DatasetSpec, matching the String() forms of
// the library's Distribution enum.
const (
	GenIndependent    = "IND"
	GenAnticorrelated = "ANT"
	GenCorrelated     = "CORR"
	GenForestCover    = "FC"
	GenRecipes        = "REC"
)

// DatasetSpec identifies a synthetic dataset by its generation parameters.
// Workers rebuild the dataset deterministically from the spec, so the
// coordinator never ships points over the wire. Only generated datasets can
// be named this way; ad-hoc datasets (NewDataset, LoadDataset) have no spec
// and cannot be executed remotely.
type DatasetSpec struct {
	// Gen is the generator name: IND, ANT, CORR, FC or REC.
	Gen string `json:"gen"`
	// N is the cardinality.
	N int `json:"n"`
	// Dims is the dimensionality.
	Dims int `json:"dims"`
	// Seed drives the generator.
	Seed int64 `json:"seed"`
}

// Validate checks the spec's ranges.
func (s DatasetSpec) Validate() error {
	switch s.Gen {
	case GenIndependent, GenAnticorrelated, GenCorrelated, GenForestCover, GenRecipes:
	default:
		return fmt.Errorf("cluster: unknown generator %q", s.Gen)
	}
	if s.N < 1 {
		return fmt.Errorf("cluster: non-positive cardinality %d", s.N)
	}
	if s.Dims < 1 {
		return fmt.Errorf("cluster: non-positive dimensionality %d", s.Dims)
	}
	return nil
}

// Key returns the spec's canonical cache key.
func (s DatasetSpec) Key() string {
	return fmt.Sprintf("%s/n=%d/d=%d/seed=%d", s.Gen, s.N, s.Dims, s.Seed)
}

// Build regenerates the dataset in the coordinator's canonical (min-
// preferred) orientation. The generators already emit min-preferred values,
// so canonicalization is a value-identity copy and the worker's rows equal
// the coordinator's bit-for-bit.
func (s DatasetSpec) Build() (*data.Dataset, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var ds *data.Dataset
	switch s.Gen {
	case GenIndependent:
		ds = data.Independent(s.N, s.Dims, s.Seed)
	case GenAnticorrelated:
		ds = data.Anticorrelated(s.N, s.Dims, s.Seed)
	case GenCorrelated:
		ds = data.Correlated(s.N, s.Dims, s.Seed)
	case GenForestCover:
		full := data.SyntheticForestCover(s.N, s.Seed)
		var err error
		ds, err = full.Project(s.Dims)
		if err != nil {
			return nil, err
		}
	case GenRecipes:
		full := data.SyntheticRecipes(s.N, s.Seed)
		var err error
		ds, err = full.Project(s.Dims)
		if err != nil {
			return nil, err
		}
	}
	return ds.Canonicalize(geom.MinPrefs(ds.Dims()))
}
