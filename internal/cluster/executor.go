// executor.go is the coordinator side: it fans per-shard work out to the
// worker fleet and folds the replies back into one exact fingerprint. All
// the resilience lives here, as a ladder per shard:
//
//  1. retry the primary node — bounded attempts, full-jitter exponential
//     backoff, per-attempt deadline derived from the query context;
//  2. hedge — after the node's observed p90 latency (or a fixed HedgeAfter)
//     a duplicate request races on the next replica, first success wins;
//  3. fail over to the alternate replica with its own retry budget;
//  4. recompute the shard locally from the coordinator's own plan
//     (disabled by NoLocalFallback);
//  5. give up on the shard — the query returns ErrShardUnavailable along
//     with the partial fold, and the caller decides whether a degraded
//     answer is acceptable.
//
// Per-node three-state circuit breakers (the pager's state machine, driven
// through RecordOutcome) sit in front of every call, so a dead worker costs
// one fast-fail per shard instead of a full retry budget, and recovers via
// half-open probes once it returns.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skydiver/internal/core"
	"skydiver/internal/data"
	"skydiver/internal/minhash"
	"skydiver/internal/pager"
	"skydiver/internal/retry"
)

// Failure sentinels, classified with errors.Is.
var (
	// ErrNoWorkers marks an executor configured with an empty worker list.
	ErrNoWorkers = errors.New("cluster: no workers configured")
	// ErrChecksum marks a reply whose payload failed checksum or shape
	// validation — wire corruption, treated as retryable.
	ErrChecksum = errors.New("cluster: response checksum mismatch")
	// ErrSkew marks a worker refusing an epoch it cannot serve; not
	// retryable across nodes (every worker is equally stale).
	ErrSkew = errors.New("cluster: epoch skew")
	// ErrShardUnavailable marks a shard no rung of the failover ladder could
	// serve. The query result alongside it is the fold of the served shards.
	ErrShardUnavailable = errors.New("cluster: shard unavailable on every replica")
)

// Config configures an Executor.
type Config struct {
	// Workers are the worker base URLs (e.g. "http://127.0.0.1:7701").
	// Shard i is primarily owned by Workers[i mod len]; the next distinct
	// worker is its failover replica and hedge target.
	Workers []string
	// MaxRetries bounds re-attempts per node after the first try (default 2).
	MaxRetries int
	// BaseDelay and MaxDelay shape the full-jitter backoff between attempts
	// (defaults 5ms and 250ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// CallTimeout is the per-attempt deadline, intersected with the query
	// context (default 10s).
	CallTimeout time.Duration
	// HedgeAfter, when positive, fixes the hedge delay. Zero derives it per
	// node from observed latency (p90 of a sliding sample window); hedging
	// stays off for a node until enough samples exist. Negative disables
	// hedging.
	HedgeAfter time.Duration
	// Breaker configures the per-node circuit breakers (zero = the pager's
	// default policy).
	Breaker pager.BreakerPolicy
	// NoLocalFallback removes rung 4: a shard whose replicas all fail is
	// reported missing instead of silently recomputed by the coordinator.
	// The exact-answer guarantee then depends on the fleet.
	NoLocalFallback bool
	// Client is the HTTP client (nil = a default with sane pooling).
	Client *http.Client
	// Logf receives executor logs; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.BaseDelay == 0 {
		c.BaseDelay = 5 * time.Millisecond
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 250 * time.Millisecond
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 10 * time.Second
	}
	if c.Breaker == (pager.BreakerPolicy{}) {
		c.Breaker = pager.DefaultBreakerPolicy()
	}
	return c
}

// Query identifies one remote fingerprint computation.
type Query struct {
	// Spec names the dataset on the wire.
	Spec DatasetSpec
	// Epoch is the coordinator's mutation epoch. Non-zero epochs are not
	// remotable (workers regenerate pristine datasets); the executor then
	// serves every shard locally and reports it in the outcome.
	Epoch uint64
	// Sharder and Shards define the partitioning; they must match the plan.
	Sharder string
	Shards  int
	// T and HashSeed parameterize the MinHash family.
	T        int
	HashSeed int64
}

// Outcome reports how a query's shards were served and what the resilience
// envelope spent doing it.
type Outcome struct {
	// Shards is the total; Remote and Local count how each was served.
	// Remote+Local+len(Missing) == Shards.
	Shards int `json:"shards"`
	Remote int `json:"remote"`
	Local  int `json:"local"`
	// Missing lists shard indexes no ladder rung could serve (ascending).
	Missing []int `json:"missing,omitempty"`
	// Retries, Hedges, Failovers and FastFails count the envelope's work:
	// re-attempts after retryable failures, hedged duplicates launched,
	// shards moved to the alternate replica, and calls rejected by an open
	// breaker.
	Retries   int64 `json:"retries"`
	Hedges    int64 `json:"hedges"`
	Failovers int64 `json:"failovers"`
	FastFails int64 `json:"fast_fails"`
	// SkylineVerified reports that remote local skylines were merged and
	// checked against the coordinator's plan (false when every shard went
	// local, e.g. on epoch skew).
	SkylineVerified bool `json:"skyline_verified"`
}

// MissingList renders Missing as a comma-separated id list.
func (o Outcome) MissingList() string {
	parts := make([]string, len(o.Missing))
	for i, s := range o.Missing {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return strings.Join(parts, ",")
}

// NodeStats snapshots one worker's executor-side state.
type NodeStats struct {
	URL       string        `json:"url"`
	Breaker   string        `json:"breaker"`
	Trips     int64         `json:"trips"`
	FastFails int64         `json:"fast_fails"`
	Calls     int64         `json:"calls"`
	Faults    int64         `json:"faults"`
	P90       time.Duration `json:"p90_ns"`
}

// Stats snapshots the executor's counters.
type Stats struct {
	Queries   int64       `json:"queries"`
	Retries   int64       `json:"retries"`
	Hedges    int64       `json:"hedges"`
	Failovers int64       `json:"failovers"`
	FastFails int64       `json:"fast_fails"`
	Local     int64       `json:"local_shards"`
	Remote    int64       `json:"remote_shards"`
	Missing   int64       `json:"missing_shards"`
	Nodes     []NodeStats `json:"nodes"`
}

// node is one worker endpoint with its breaker and latency window.
type node struct {
	base string
	br   *pager.Breaker

	mu     sync.Mutex
	lat    []time.Duration // ring of recent successful-call latencies
	latIdx int
	latN   int

	calls, faults atomic.Int64
}

const latWindow = 64

// observe records a successful call's latency.
func (n *node) observe(d time.Duration) {
	n.mu.Lock()
	if len(n.lat) < latWindow {
		n.lat = append(n.lat, d)
	} else {
		n.lat[n.latIdx] = d
		n.latIdx = (n.latIdx + 1) % latWindow
	}
	n.latN++
	n.mu.Unlock()
}

// p90 returns the 90th-percentile observed latency, or 0 with fewer than 8
// samples (not enough signal to hedge on).
func (n *node) p90() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.lat) < 8 {
		return 0
	}
	s := append([]time.Duration(nil), n.lat...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	return s[(len(s)*9)/10]
}

// Executor coordinates remote shard execution. Safe for concurrent use; keep
// one per worker fleet so breaker and latency state persist across queries.
type Executor struct {
	cfg    Config
	client *http.Client
	nodes  []*node

	queries, retries, hedges, failovers, fastFails atomic.Int64
	localShards, remoteShards, missingShards       atomic.Int64
}

// New creates an executor for the fleet.
func New(cfg Config) (*Executor, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, ErrNoWorkers
	}
	e := &Executor{cfg: cfg, client: cfg.Client}
	if e.client == nil {
		e.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	for _, w := range cfg.Workers {
		br, err := pager.NewBreaker(cfg.Breaker)
		if err != nil {
			return nil, err
		}
		e.nodes = append(e.nodes, &node{base: strings.TrimRight(w, "/"), br: br})
	}
	return e, nil
}

func (e *Executor) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// Stats snapshots the executor's counters and per-node state.
func (e *Executor) Stats() Stats {
	s := Stats{
		Queries:   e.queries.Load(),
		Retries:   e.retries.Load(),
		Hedges:    e.hedges.Load(),
		Failovers: e.failovers.Load(),
		FastFails: e.fastFails.Load(),
		Local:     e.localShards.Load(),
		Remote:    e.remoteShards.Load(),
		Missing:   e.missingShards.Load(),
	}
	for _, n := range e.nodes {
		bs := n.br.Stats()
		s.Nodes = append(s.Nodes, NodeStats{
			URL:       n.base,
			Breaker:   bs.State.String(),
			Trips:     bs.Trips,
			FastFails: bs.FastFails,
			Calls:     n.calls.Load(),
			Faults:    n.faults.Load(),
			P90:       n.p90(),
		})
	}
	return s
}

// primary and replica pick a shard's owner and its failover target. With a
// single worker there is no distinct replica.
func (e *Executor) primary(shard int) *node { return e.nodes[shard%len(e.nodes)] }
func (e *Executor) replica(shard int) *node {
	if len(e.nodes) < 2 {
		return nil
	}
	return e.nodes[(shard+1)%len(e.nodes)]
}

// Fingerprint executes the query against the fleet: every shard's local
// skyline is fetched and merge-verified against the coordinator's plan, then
// every shard's signature fold is fetched and merged. plan and ds are the
// coordinator's own shard plan and canonical dataset — the source of the
// failover ladder's local rung and the merge cross-check.
//
// On success the returned fingerprint is bit-identical to the in-process
// sharded fold (and so to the unsharded pass): same slots, same scores, same
// synthetic I/O accounting. When some shards could not be served at all, the
// partial fold is returned together with ErrShardUnavailable and the missing
// ids in the outcome; the caller chooses whether to degrade.
func (e *Executor) Fingerprint(ctx context.Context, q Query, plan *core.ShardPlan, ds *data.Dataset) (*core.Fingerprint, Outcome, error) {
	e.queries.Add(1)
	out := Outcome{Shards: len(plan.Shards)}
	fam, err := minhash.NewFamily(q.T, q.HashSeed)
	if err != nil {
		return nil, out, err
	}
	if q.Epoch != 0 {
		// Workers regenerate pristine datasets; a mutated coordinator copy
		// cannot be served remotely. Serve the whole plan locally.
		e.logf("epoch %d: serving all %d shards locally (%v)", q.Epoch, out.Shards, ErrSkew)
		fp, err := core.SigGenShardedCtx(ctx, plan, ds, fam, 0)
		if err != nil {
			return nil, out, err
		}
		out.Local = out.Shards
		e.localShards.Add(int64(out.Shards))
		return fp, out, nil
	}

	type skyRes struct {
		rows  []int
		local bool // served by the coordinator's plan, not a worker
		miss  bool
	}
	skies := make([]skyRes, out.Shards)
	var wg sync.WaitGroup
	for i := range plan.Shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := ShardRequest{Spec: q.Spec, Epoch: q.Epoch, Sharder: q.Sharder, Shards: q.Shards, Shard: i}
			var resp SkylineResponse
			err := e.callShard(ctx, i, PathSkyline, req, &resp, &out)
			switch {
			case err == nil:
				skies[i] = skyRes{rows: resp.Rows}
			case e.cfg.NoLocalFallback:
				skies[i] = skyRes{miss: true}
			default:
				skies[i] = skyRes{rows: plan.Shards[i].Sky, local: true}
			}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, out, err
	}

	// Merge-verify: the remote local skylines must recombine to exactly the
	// coordinator's merged skyline. A mismatch means a worker computed
	// against different data — abort rather than fold bogus signatures.
	// Shards whose skyline is missing are excluded from the check (their
	// fold is already lost) but the merge still uses the coordinator's copy
	// so the global skyline — and the signature columns — stay complete.
	locals := make([][]int, out.Shards)
	remoteSkies := 0
	for i, sr := range skies {
		if sr.miss {
			locals[i] = plan.Shards[i].Sky
			continue
		}
		if !sr.local {
			remoteSkies++
		}
		locals[i] = sr.rows
	}
	merged := core.MergeShardSkylines(ds, locals)
	if !equalRows(merged, plan.Sky) {
		return nil, out, fmt.Errorf("cluster: merged remote skyline diverged from plan (%d vs %d points)", len(merged), len(plan.Sky))
	}
	out.SkylineVerified = remoteSkies > 0

	// Phase 2: per-shard signature folds against the merged skyline.
	type foldRes struct {
		fp      *core.Fingerprint
		scanned int
		local   bool
		miss    bool
	}
	folds := make([]foldRes, out.Shards)
	for i := range plan.Shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := ShardRequest{
				Spec: q.Spec, Epoch: q.Epoch, Sharder: q.Sharder, Shards: q.Shards, Shard: i,
				T: q.T, HashSeed: q.HashSeed, Sky: plan.Sky,
			}
			var resp FoldResponse
			if err := e.callShard(ctx, i, PathSigFold, req, &resp, &out); err == nil {
				if m, derr := DecodeMatrix(resp.Sig, q.T, len(plan.Sky), resp.Checksum); derr == nil &&
					len(resp.DomScore) == len(plan.Sky) {
					folds[i] = foldRes{fp: &core.Fingerprint{Matrix: m, DomScore: resp.DomScore}, scanned: resp.Scanned}
					return
				}
				// A decode failure past callShard's own verification means a
				// malformed-but-uncorrupted reply; treat like a failed shard.
			}
			if e.cfg.NoLocalFallback {
				folds[i] = foldRes{miss: true}
				return
			}
			fp, err := plan.ShardFingerprint(ctx, i, fam)
			if err != nil {
				folds[i] = foldRes{miss: true}
				return
			}
			folds[i] = foldRes{fp: fp, scanned: plan.ShardScanned(i), local: true}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, out, err
	}

	m := len(plan.Sky)
	fp := &core.Fingerprint{Matrix: minhash.NewMatrix(q.T, m), DomScore: make([]float64, m)}
	scanned := 0
	for i, fr := range folds {
		switch {
		case fr.miss:
			out.Missing = append(out.Missing, i)
		case fr.local:
			out.Local++
		default:
			out.Remote++
		}
		if fr.fp == nil {
			continue
		}
		for c := 0; c < m; c++ {
			fp.Matrix.UpdateColumn(c, fr.fp.Matrix.Column(c))
			fp.DomScore[c] += fr.fp.DomScore[c]
		}
		scanned += fr.scanned
	}
	fp.IO = core.SyntheticScanStats(ds.Dims(), scanned)
	e.remoteShards.Add(int64(out.Remote))
	e.localShards.Add(int64(out.Local))
	e.missingShards.Add(int64(len(out.Missing)))
	if len(out.Missing) > 0 {
		sort.Ints(out.Missing)
		return fp, out, fmt.Errorf("%w: shards [%s]", ErrShardUnavailable, out.MissingList())
	}
	return fp, out, nil
}

// callShard walks rungs 1–3 of the ladder for one RPC: retries with backoff
// on the primary (hedging attempt 0), then the same on the alternate
// replica. It returns nil with resp decoded on success; the caller applies
// rungs 4–5. Outcome counters are updated atomically.
func (e *Executor) callShard(ctx context.Context, shard int, path string, req ShardRequest, resp any, out *Outcome) error {
	prim, alt := e.primary(shard), e.replica(shard)
	err := e.callNode(ctx, prim, alt, path, req, resp, out)
	if err == nil || alt == nil || !retryableErr(err) {
		return err
	}
	atomic.AddInt64(&out.Failovers, 1)
	e.failovers.Add(1)
	e.logf("shard %d %s: failing over to %s after: %v", shard, path, alt.base, err)
	return e.callNode(ctx, alt, nil, path, req, resp, out)
}

// callNode runs the bounded retry loop against one node. hedge, when
// non-nil, is raced as a duplicate on the first attempt after the hedge
// delay.
func (e *Executor) callNode(ctx context.Context, n, hedge *node, path string, req ShardRequest, resp any, out *Outcome) error {
	pol := retry.Policy{
		MaxRetries: e.cfg.MaxRetries,
		BaseDelay:  e.cfg.BaseDelay,
		MaxDelay:   e.cfg.MaxDelay,
		FullJitter: true,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt <= e.cfg.MaxRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt == 0 && hedge != nil {
			lastErr = e.doHedged(ctx, n, hedge, path, body, resp, out)
		} else {
			lastErr = e.doOnce(ctx, n, path, body, resp, out)
		}
		if lastErr == nil || !retryableErr(lastErr) {
			return lastErr
		}
		if attempt < e.cfg.MaxRetries {
			atomic.AddInt64(&out.Retries, 1)
			e.retries.Add(1)
			if err := pol.Wait(ctx, attempt); err != nil {
				return err
			}
		}
	}
	return lastErr
}

// doOnce issues one breaker-screened attempt against one node.
func (e *Executor) doOnce(ctx context.Context, n *node, path string, body []byte, resp any, out *Outcome) error {
	if err := n.br.Allow(); err != nil {
		atomic.AddInt64(&out.FastFails, 1)
		e.fastFails.Add(1)
		return fmt.Errorf("%s: %w", n.base, err)
	}
	err := e.roundTrip(ctx, n, path, body, resp)
	n.br.RecordOutcome(err != nil && retryableErr(err))
	return err
}

// doHedged races the primary attempt against a delayed duplicate on the
// hedge node: the first success wins and the loser is cancelled. With no
// usable hedge delay (hedging disabled, or not enough latency samples yet)
// it degenerates to a plain attempt.
func (e *Executor) doHedged(ctx context.Context, n, hedge *node, path string, body []byte, resp any, out *Outcome) error {
	delay := e.cfg.HedgeAfter
	if delay == 0 {
		delay = n.p90()
	}
	if delay <= 0 {
		return e.doOnce(ctx, n, path, body, resp, out)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type res struct {
		err     error
		decoded any
		hedged  bool
	}
	results := make(chan res, 2)
	launch := func(target *node, hedged bool) {
		// Each racer decodes into a private value: both may complete, and
		// the winner's copy must not be torn by the loser.
		dst := newLike(resp)
		err := e.doOnce(hctx, target, path, body, dst, out)
		results <- res{err: err, decoded: dst, hedged: hedged}
	}
	go launch(n, false)
	timer := retry.NewTimer(delay)
	defer timer.Stop()
	launched := 1
	var firstErr error
	for {
		select {
		case <-timer.C:
			if launched == 1 {
				launched = 2
				atomic.AddInt64(&out.Hedges, 1)
				e.hedges.Add(1)
				go launch(hedge, true)
			}
		case r := <-results:
			if r.err == nil {
				copyInto(resp, r.decoded)
				cancel()
				return nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			launched--
			if launched == 0 {
				return firstErr
			}
			if launched == 1 && r.hedged {
				// The hedge failed first; keep waiting for the primary.
				continue
			}
			// The primary failed; if the hedge is not up yet, fire it now
			// rather than waiting out the timer.
			if launched == 1 && !r.hedged {
				continue
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// newLike allocates a fresh value of resp's pointed-to type.
func newLike(resp any) any {
	switch resp.(type) {
	case *SkylineResponse:
		return &SkylineResponse{}
	case *FoldResponse:
		return &FoldResponse{}
	default:
		panic(fmt.Sprintf("cluster: unsupported response type %T", resp))
	}
}

// copyInto copies a racer's decoded reply into the caller's destination.
func copyInto(dst, src any) {
	switch d := dst.(type) {
	case *SkylineResponse:
		*d = *src.(*SkylineResponse)
	case *FoldResponse:
		*d = *src.(*FoldResponse)
	}
}

// roundTrip performs one HTTP exchange with the per-attempt deadline and
// full reply validation (status mapping, JSON decode, checksum).
func (e *Executor) roundTrip(ctx context.Context, n *node, path string, body []byte, resp any) error {
	cctx, cancel := context.WithTimeout(ctx, e.cfg.CallTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(cctx, http.MethodPost, n.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	n.calls.Add(1)
	start := time.Now()
	hresp, err := e.client.Do(hreq)
	if err != nil {
		n.faults.Add(1)
		// Transport-level failure: connection refused, reset, injected drop.
		return fmt.Errorf("%s%s: %w", n.base, path, err)
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
	if err != nil {
		n.faults.Add(1)
		return fmt.Errorf("%s%s: reading reply: %w", n.base, path, err)
	}
	switch {
	case hresp.StatusCode == http.StatusOK:
	case hresp.StatusCode == http.StatusConflict:
		return fmt.Errorf("%s%s: %w: %s", n.base, path, ErrSkew, strings.TrimSpace(string(raw)))
	case hresp.StatusCode == http.StatusTooManyRequests,
		hresp.StatusCode >= http.StatusInternalServerError:
		n.faults.Add(1)
		return &statusErr{status: hresp.StatusCode, msg: fmt.Sprintf("%s%s: %s", n.base, path, strings.TrimSpace(string(raw)))}
	default:
		// 4xx: the request itself is wrong; retrying cannot help.
		return fmt.Errorf("%s%s: status %d: %s", n.base, path, hresp.StatusCode, strings.TrimSpace(string(raw)))
	}
	if err := json.Unmarshal(raw, resp); err != nil {
		n.faults.Add(1)
		return fmt.Errorf("%s%s: %w: %v", n.base, path, ErrChecksum, err)
	}
	if sr, ok := resp.(*SkylineResponse); ok {
		if got := RowsChecksum(sr.Rows); got != sr.Checksum {
			n.faults.Add(1)
			return fmt.Errorf("%s%s: %w: rows crc %08x, want %08x", n.base, path, ErrChecksum, got, sr.Checksum)
		}
	}
	n.observe(time.Since(start))
	return nil
}

// statusErr is a retryable HTTP-status failure (429, 5xx).
type statusErr struct {
	status int
	msg    string
}

func (e *statusErr) Error() string { return fmt.Sprintf("status %d: %s", e.status, e.msg) }

// retryableErr classifies a call failure: transport errors, 429/5xx,
// checksum mismatches and breaker fast-fails (the alternate replica may be
// healthy) are retryable; epoch skew, other 4xx and context expiry are not.
func retryableErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, ErrSkew) {
		return false
	}
	// Note: context.DeadlineExceeded is NOT screened out here — a wrapped
	// deadline usually means the per-attempt CallTimeout fired, which a
	// retry (or the replica) may well beat. Outer-context expiry is caught
	// by the explicit ctx.Err() checks at the top of every retry loop.
	var se *statusErr
	if errors.As(err, &se) {
		return true
	}
	if errors.Is(err, ErrChecksum) || errors.Is(err, pager.ErrCircuitOpen) {
		return true
	}
	// Anything carrying a *url.Error is a transport failure (refused,
	// reset, injected drop, per-attempt deadline on the wire).
	var ue *url.Error
	if errors.As(err, &ue) {
		return true
	}
	return errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)
}
