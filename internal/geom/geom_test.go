package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want bool
	}{
		{"strictly better everywhere", []float64{1, 1}, []float64{2, 2}, true},
		{"better on one, equal on other", []float64{1, 2}, []float64{2, 2}, true},
		{"equal points", []float64{1, 2}, []float64{1, 2}, false},
		{"incomparable", []float64{1, 3}, []float64{3, 1}, false},
		{"worse on one dim", []float64{1, 3}, []float64{2, 2}, false},
		{"dominated", []float64{5, 5}, []float64{1, 1}, false},
		{"1d strict", []float64{0}, []float64{1}, true},
		{"1d equal", []float64{1}, []float64{1}, false},
		{"3d mixed", []float64{1, 2, 3}, []float64{1, 2, 4}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Dominates(tc.a, tc.b); got != tc.want {
				t.Errorf("Dominates(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestDominatesOrEqual(t *testing.T) {
	if !DominatesOrEqual([]float64{1, 2}, []float64{1, 2}) {
		t.Error("equal points must satisfy DominatesOrEqual")
	}
	if DominatesOrEqual([]float64{1, 3}, []float64{2, 2}) {
		t.Error("incomparable points must not satisfy DominatesOrEqual")
	}
}

func TestIncomparable(t *testing.T) {
	if !Incomparable([]float64{1, 3}, []float64{3, 1}) {
		t.Error("expected incomparable")
	}
	if Incomparable([]float64{1, 1}, []float64{2, 2}) {
		t.Error("dominating pair reported incomparable")
	}
	if Incomparable([]float64{1, 1}, []float64{1, 1}) {
		t.Error("equal pair reported incomparable")
	}
}

// randPoint draws a point in [0,1)^d with coordinates quantized to a small
// grid so that ties and equal points actually occur.
func randPoint(r *rand.Rand, d int) []float64 {
	p := make([]float64, d)
	for i := range p {
		p[i] = float64(r.Intn(8)) / 8
	}
	return p
}

// TestDominanceStrictPartialOrder checks irreflexivity, asymmetry and
// transitivity of the dominance relation on random quantized points.
func TestDominanceStrictPartialOrder(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for d := 1; d <= 5; d++ {
		for trial := 0; trial < 2000; trial++ {
			a, b, c := randPoint(r, d), randPoint(r, d), randPoint(r, d)
			if Dominates(a, a) {
				t.Fatalf("d=%d: irreflexivity violated for %v", d, a)
			}
			if Dominates(a, b) && Dominates(b, a) {
				t.Fatalf("d=%d: asymmetry violated for %v, %v", d, a, b)
			}
			if Dominates(a, b) && Dominates(b, c) && !Dominates(a, c) {
				t.Fatalf("d=%d: transitivity violated for %v, %v, %v", d, a, b, c)
			}
		}
	}
}

func TestDominatesQuick(t *testing.T) {
	// Dominance is invariant under appending a shared coordinate.
	f := func(a, b [3]float64, extra float64) bool {
		base := Dominates(a[:], b[:])
		ax := append(append([]float64{}, a[:]...), extra)
		bx := append(append([]float64{}, b[:]...), extra)
		return Dominates(ax, bx) == base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPreferences(t *testing.T) {
	prefs := Preferences{Min, Max, Min}
	if err := prefs.Validate(3); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := prefs.Validate(2); err == nil {
		t.Error("expected dimension mismatch error")
	}
	if err := (Preferences{Pref(7)}).Validate(1); err == nil {
		t.Error("expected invalid preference error")
	}
	p := prefs.Canonicalize([]float64{1, 2, 3})
	want := []float64{1, -2, 3}
	if !Equal(p, want) {
		t.Errorf("Canonicalize = %v, want %v", p, want)
	}
	// Under prefs, (price=1, quality=5) should dominate (price=2, quality=3).
	a := prefs[:2].Canonicalize([]float64{1, 5})
	b := prefs[:2].Canonicalize([]float64{2, 3})
	if !Dominates(a, b) {
		t.Error("max-preference canonicalization broken")
	}
}

func TestPrefString(t *testing.T) {
	if Min.String() != "min" || Max.String() != "max" {
		t.Error("Pref.String mismatch")
	}
}

func TestUpperCorner(t *testing.T) {
	dst := make([]float64, 2)
	got := UpperCorner(dst, []float64{1, 4}, []float64{3, 2})
	if !Equal(got, []float64{3, 4}) {
		t.Errorf("UpperCorner = %v", got)
	}
}

// TestUpperCornerIntersection: r dominated by both a and b iff r dominated by
// their upper corner — the identity behind the exact-Jaccard range oracle.
func TestUpperCornerIntersection(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	dst := make([]float64, 3)
	for trial := 0; trial < 5000; trial++ {
		a, b, x := randPoint(r, 3), randPoint(r, 3), randPoint(r, 3)
		u := UpperCorner(dst, a, b)
		both := Dominates(a, x) && Dominates(b, x)
		// The corner identity holds up to strictness on shared boundaries:
		// Dominates(u, x) implies both, and both implies DominatesOrEqual(u, x).
		if Dominates(u, x) && !both {
			t.Fatalf("corner dominates but pair does not: a=%v b=%v x=%v", a, b, x)
		}
		if both && !DominatesOrEqual(u, x) {
			t.Fatalf("pair dominates but corner is worse: a=%v b=%v x=%v", a, b, x)
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(2)
	if r.Area() != math.Inf(-1)*math.Inf(1) && !math.IsInf(r.Hi[0], -1) {
		t.Error("NewRect not reversed-empty")
	}
	r.ExpandPoint([]float64{1, 2})
	r.ExpandPoint([]float64{3, 0})
	if !Equal(r.Lo, []float64{1, 0}) || !Equal(r.Hi, []float64{3, 2}) {
		t.Fatalf("expand: %v", r)
	}
	if got := r.Area(); got != 4 {
		t.Errorf("Area = %v, want 4", got)
	}
	if got := r.Margin(); got != 4 {
		t.Errorf("Margin = %v, want 4", got)
	}
	if !r.Contains([]float64{2, 1}) || r.Contains([]float64{0, 1}) {
		t.Error("Contains broken")
	}
	o := Rect{Lo: []float64{2, 1}, Hi: []float64{5, 5}}
	if !r.Intersects(o) {
		t.Error("Intersects broken")
	}
	if got := r.OverlapArea(o); got != 1 {
		t.Errorf("OverlapArea = %v, want 1", got)
	}
	if got := r.EnlargedArea(o); got != 20 {
		t.Errorf("EnlargedArea = %v, want 20", got)
	}
	if r.ContainsRect(o) {
		t.Error("ContainsRect broken")
	}
	inner := Rect{Lo: []float64{1.5, 0.5}, Hi: []float64{2, 1}}
	if !r.ContainsRect(inner) {
		t.Error("ContainsRect should hold for inner rect")
	}
	c := r.Center(make([]float64, 2))
	if !Equal(c, []float64{2, 1}) {
		t.Errorf("Center = %v", c)
	}
	cl := r.Clone()
	cl.Lo[0] = -10
	if r.Lo[0] == -10 {
		t.Error("Clone aliases original")
	}
	r2 := NewRect(2)
	r2.ExpandRect(r)
	r2.ExpandRect(o)
	if !Equal(r2.Lo, []float64{1, 0}) || !Equal(r2.Hi, []float64{5, 5}) {
		t.Errorf("ExpandRect: %v", r2)
	}
}

func TestRectDisjoint(t *testing.T) {
	a := Rect{Lo: []float64{0, 0}, Hi: []float64{1, 1}}
	b := Rect{Lo: []float64{2, 2}, Hi: []float64{3, 3}}
	if a.Intersects(b) {
		t.Error("disjoint rects intersect")
	}
	if a.OverlapArea(b) != 0 {
		t.Error("disjoint overlap must be 0")
	}
}

func TestPointRect(t *testing.T) {
	p := []float64{1, 2}
	r := PointRect(p)
	if r.Area() != 0 || !r.Contains(p) || r.Dims() != 2 {
		t.Error("PointRect broken")
	}
	if r.MinDistL1() != 3 {
		t.Error("MinDistL1 broken")
	}
}

func TestDomRelation(t *testing.T) {
	r := Rect{Lo: []float64{2, 2}, Hi: []float64{4, 4}}
	tests := []struct {
		name string
		p    []float64
		want DomRel
	}{
		{"full from below", []float64{1, 1}, DomFull},
		{"full touching one coord", []float64{2, 1}, DomFull},
		{"on lower corner", []float64{2, 2}, DomPartial},
		{"partial", []float64{3, 1}, DomPartial},
		{"partial inside", []float64{3, 3}, DomPartial},
		{"none", []float64{5, 1}, DomNone},
		{"upper corner", []float64{4, 4}, DomNone},
		{"beyond", []float64{9, 9}, DomNone},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := DomRelation(tc.p, r); got != tc.want {
				t.Errorf("DomRelation(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
}

// TestDomRelationSound verifies the semantics SigGen-IB depends on: full
// dominance implies every point inside the rectangle is dominated, and no
// dominated point exists inside a DomNone rectangle.
func TestDomRelationSound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		d := 2 + rng.Intn(3)
		r := NewRect(d)
		r.ExpandPoint(randPoint(rng, d))
		r.ExpandPoint(randPoint(rng, d))
		p := randPoint(rng, d)
		rel := DomRelation(p, r)
		// Sample points inside r.
		for s := 0; s < 20; s++ {
			x := make([]float64, d)
			for i := range x {
				x[i] = r.Lo[i] + rng.Float64()*(r.Hi[i]-r.Lo[i])
			}
			switch rel {
			case DomFull:
				if !Dominates(p, x) {
					t.Fatalf("full dominance unsound: p=%v r=%v x=%v", p, r, x)
				}
			case DomNone:
				if Dominates(p, x) {
					t.Fatalf("none dominance unsound: p=%v r=%v x=%v", p, r, x)
				}
			}
		}
	}
}

func TestDomRelString(t *testing.T) {
	if DomFull.String() != "full" || DomPartial.String() != "partial" || DomNone.String() != "none" {
		t.Error("DomRel.String mismatch")
	}
}

func TestL1(t *testing.T) {
	if L1([]float64{1, 2, 3}) != 6 {
		t.Error("L1 broken")
	}
}

func TestEqualLengthMismatch(t *testing.T) {
	if Equal([]float64{1}, []float64{1, 2}) {
		t.Error("Equal must reject different lengths")
	}
}

func BenchmarkDominates(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const d = 6
	pts := make([][]float64, 1024)
	for i := range pts {
		pts[i] = make([]float64, d)
		for j := range pts[i] {
			pts[i][j] = r.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dominates(pts[i%1024], pts[(i+1)%1024])
	}
}

func BenchmarkDomRelation(b *testing.B) {
	r := Rect{Lo: []float64{2, 2, 2, 2}, Hi: []float64{4, 4, 4, 4}}
	p := []float64{3, 1, 3, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DomRelation(p, r)
	}
}
