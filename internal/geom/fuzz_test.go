package geom

import "testing"

// FuzzDominates checks the strict-partial-order axioms on arbitrary float
// pairs (including NaN/Inf inputs, which must not panic).
func FuzzDominates(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, a0, a1, b0, b1 float64) {
		a := []float64{a0, a1}
		b := []float64{b0, b1}
		if Dominates(a, a) {
			t.Fatal("irreflexivity violated")
		}
		if Dominates(a, b) && Dominates(b, a) {
			t.Fatal("asymmetry violated")
		}
		if Dominates(a, b) && !DominatesOrEqual(a, b) {
			t.Fatal("strict dominance must imply weak dominance")
		}
	})
}

// FuzzDomRelation checks the SigGen-IB classification soundness on
// arbitrary rectangles: full implies weak dominance of both corners, and
// none must be consistent with not dominating the upper corner.
func FuzzDomRelation(f *testing.F) {
	f.Add(0.5, 0.5, 0.0, 0.0, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, px, py, lx, ly, hx, hy float64) {
		if lx > hx || ly > hy {
			return
		}
		p := []float64{px, py}
		r := Rect{Lo: []float64{lx, ly}, Hi: []float64{hx, hy}}
		switch DomRelation(p, r) {
		case DomFull:
			if !Dominates(p, r.Lo) || !Dominates(p, r.Hi) && !Equal(r.Lo, r.Hi) {
				// Full requires strictly dominating Lo; Hi follows unless
				// the rect is degenerate at Lo==Hi.
				if !Dominates(p, r.Lo) {
					t.Fatal("full without dominating Lo")
				}
			}
		case DomNone:
			if Dominates(p, r.Hi) {
				t.Fatal("none while dominating Hi")
			}
		}
	})
}
