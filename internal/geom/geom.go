// Package geom provides the geometric kernel of the SkyDiver reproduction:
// strict Pareto dominance between points, minimization/maximization
// preferences, axis-aligned minimum bounding rectangles (MBRs), and the
// full/partial dominance relations between a point and a rectangle that the
// index-based signature generator (SigGen-IB) relies on.
//
// Throughout the package, and the repository, the canonical orientation is
// "smaller is better" on every dimension, matching Section 3.1 of the paper.
// User-facing code converts maximization preferences by negating the
// corresponding attribute (see Preferences.Canonicalize).
package geom

import (
	"fmt"
	"math"
)

// Pref states whether smaller or larger values are preferred on a dimension.
type Pref uint8

const (
	// Min prefers smaller attribute values (the canonical orientation).
	Min Pref = iota
	// Max prefers larger attribute values.
	Max
)

// String returns "min" or "max".
func (p Pref) String() string {
	if p == Max {
		return "max"
	}
	return "min"
}

// Preferences is a per-dimension preference vector.
type Preferences []Pref

// MinPrefs returns a preference vector of d minimization preferences.
func MinPrefs(d int) Preferences {
	return make(Preferences, d)
}

// Canonicalize rewrites point p in place so that minimization is preferred on
// every dimension: attributes with a Max preference are negated. It returns p
// for chaining.
func (prefs Preferences) Canonicalize(p []float64) []float64 {
	for i, pr := range prefs {
		if pr == Max {
			p[i] = -p[i]
		}
	}
	return p
}

// Validate returns an error unless the vector has exactly d entries, each of
// which is Min or Max.
func (prefs Preferences) Validate(d int) error {
	if len(prefs) != d {
		return fmt.Errorf("geom: preference vector has %d entries, dataset has %d dimensions", len(prefs), d)
	}
	for i, pr := range prefs {
		if pr != Min && pr != Max {
			return fmt.Errorf("geom: invalid preference %d on dimension %d", pr, i)
		}
	}
	return nil
}

// Dominates reports whether a strictly dominates b under minimization
// preferences: a is no worse than b on every dimension and strictly better on
// at least one. Both slices must have equal length.
func Dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// DominatesOrEqual reports whether a is no worse than b on every dimension
// (a ≼ b). Unlike Dominates it accepts equal points.
func DominatesOrEqual(a, b []float64) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// Incomparable reports whether neither point dominates the other and they are
// not equal.
func Incomparable(a, b []float64) bool {
	return !Dominates(a, b) && !Dominates(b, a) && !Equal(a, b)
}

// Equal reports componentwise equality.
func Equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// UpperCorner writes the componentwise maximum of a and b into dst and
// returns dst. A point r is dominated by both a and b exactly when it lies in
// the dominance region of this corner (modulo strictness on the boundary),
// which is how the exact-Jaccard oracle computes |Γ(a) ∩ Γ(b)|.
func UpperCorner(dst, a, b []float64) []float64 {
	for i := range a {
		dst[i] = math.Max(a[i], b[i])
	}
	return dst
}

// L1 returns the L1 norm (sum of coordinates) of p. It is the BBS "mindist"
// key for minimization skylines and the SFS presort key.
func L1(p []float64) float64 {
	s := 0.0
	for _, v := range p {
		s += v
	}
	return s
}

// Rect is an axis-aligned rectangle given by its lower-left (best) and
// upper-right (worst) corners under minimization preferences.
type Rect struct {
	Lo, Hi []float64
}

// NewRect allocates a d-dimensional rectangle initialized to the empty
// reversed rectangle (+inf lows, -inf highs), ready for ExpandPoint/ExpandRect.
func NewRect(d int) Rect {
	r := Rect{Lo: make([]float64, d), Hi: make([]float64, d)}
	r.Reset()
	return r
}

// Reset re-initializes r to the empty reversed rectangle.
func (r Rect) Reset() {
	for i := range r.Lo {
		r.Lo[i] = math.Inf(1)
		r.Hi[i] = math.Inf(-1)
	}
}

// PointRect returns the degenerate rectangle covering exactly p. The returned
// rectangle aliases p; callers must not mutate it.
func PointRect(p []float64) Rect {
	return Rect{Lo: p, Hi: p}
}

// Dims returns the dimensionality of the rectangle.
func (r Rect) Dims() int { return len(r.Lo) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	lo := make([]float64, len(r.Lo))
	hi := make([]float64, len(r.Hi))
	copy(lo, r.Lo)
	copy(hi, r.Hi)
	return Rect{Lo: lo, Hi: hi}
}

// ExpandPoint grows r to cover point p.
func (r Rect) ExpandPoint(p []float64) {
	for i, v := range p {
		if v < r.Lo[i] {
			r.Lo[i] = v
		}
		if v > r.Hi[i] {
			r.Hi[i] = v
		}
	}
}

// ExpandRect grows r to cover o.
func (r Rect) ExpandRect(o Rect) {
	for i := range r.Lo {
		if o.Lo[i] < r.Lo[i] {
			r.Lo[i] = o.Lo[i]
		}
		if o.Hi[i] > r.Hi[i] {
			r.Hi[i] = o.Hi[i]
		}
	}
}

// Contains reports whether p lies inside r (boundaries included).
func (r Rect) Contains(p []float64) bool {
	for i, v := range p {
		if v < r.Lo[i] || v > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether o lies entirely inside r.
func (r Rect) ContainsRect(o Rect) bool {
	for i := range r.Lo {
		if o.Lo[i] < r.Lo[i] || o.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and o overlap (boundaries included).
func (r Rect) Intersects(o Rect) bool {
	for i := range r.Lo {
		if r.Lo[i] > o.Hi[i] || r.Hi[i] < o.Lo[i] {
			return false
		}
	}
	return true
}

// Area returns the d-dimensional volume of r. Degenerate rectangles have
// zero area.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Lo {
		a *= r.Hi[i] - r.Lo[i]
	}
	return a
}

// Margin returns the sum of edge lengths of r (the R*-tree split heuristic
// uses it as a perimeter surrogate).
func (r Rect) Margin() float64 {
	m := 0.0
	for i := range r.Lo {
		m += r.Hi[i] - r.Lo[i]
	}
	return m
}

// EnlargedArea returns the area of r expanded to cover o, without mutating r.
func (r Rect) EnlargedArea(o Rect) float64 {
	a := 1.0
	for i := range r.Lo {
		lo := math.Min(r.Lo[i], o.Lo[i])
		hi := math.Max(r.Hi[i], o.Hi[i])
		a *= hi - lo
	}
	return a
}

// OverlapArea returns the volume of the intersection of r and o, or 0 when
// they are disjoint.
func (r Rect) OverlapArea(o Rect) float64 {
	a := 1.0
	for i := range r.Lo {
		lo := math.Max(r.Lo[i], o.Lo[i])
		hi := math.Min(r.Hi[i], o.Hi[i])
		if hi <= lo {
			return 0
		}
		a *= hi - lo
	}
	return a
}

// Center writes the rectangle's center into dst and returns it.
func (r Rect) Center(dst []float64) []float64 {
	for i := range r.Lo {
		dst[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return dst
}

// MinDistL1 returns the L1 norm of the lower-left corner: the minimum
// possible L1 key of any point inside r. BBS orders its priority queue by it.
func (r Rect) MinDistL1() float64 {
	return L1(r.Lo)
}

// DomRel classifies how a skyline point p relates to rectangle r with respect
// to dominance, following Section 4.1.2:
//
//   - DomFull: p dominates the lower-left corner of r, hence every point that
//     can lie inside r. The subtree can be processed wholesale.
//   - DomPartial: p does not fully dominate r but dominates its upper-right
//     corner, so p dominates some — but possibly not all — points inside r.
//     The subtree must be opened.
//   - DomNone: p does not dominate the upper-right corner; nothing inside r
//     is dominated by p.
type DomRel uint8

// Dominance relation classifications for DomRelation.
const (
	DomNone DomRel = iota
	DomPartial
	DomFull
)

// String names the relation for diagnostics.
func (d DomRel) String() string {
	switch d {
	case DomFull:
		return "full"
	case DomPartial:
		return "partial"
	default:
		return "none"
	}
}

// DomRelation classifies the dominance relation between point p and
// rectangle r. Full dominance requires p to strictly dominate the lower-left
// corner so that the wholesale signature update of SigGen-IB remains exact
// even for points lying on the rectangle boundary.
func DomRelation(p []float64, r Rect) DomRel {
	if Dominates(p, r.Lo) {
		return DomFull
	}
	if Dominates(p, r.Hi) {
		return DomPartial
	}
	return DomNone
}
