package coverage

import (
	"math/rand"
	"sort"
	"testing"

	"skydiver/internal/data"
	"skydiver/internal/geom"
	"skydiver/internal/skyline"
)

// figure1Postings encodes the paper's Figure 1 dominance graph:
// skyline {a, b, c, d} over dominated points p1..p11 (rows 0..10).
//
//	a -> {p1}
//	b -> {p2..p7}
//	c -> {p5..p11}
//	d -> {p8..p10}
//
// (A concrete reading of the figure's edges; what matters is the shape:
// b and c overlap, d lies inside c, a is disjoint from everything.)
func figure1Postings() *Postings {
	return &Postings{
		Lists: [][]int32{
			{0},                    // a
			{1, 2, 3, 4, 5, 6},     // b
			{4, 5, 6, 7, 8, 9, 10}, // c
			{7, 8, 9},              // d
		},
		Rows: 11,
	}
}

func TestFigure1MaxCoverageVsDiversity(t *testing.T) {
	p := figure1Postings()
	// Max coverage with k=2 picks b and c (10 distinct rows).
	sel, covered, err := GreedyMaxCoverage(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(sel)
	if !(sel[0] == 1 && sel[1] == 2) {
		t.Errorf("max-coverage picked %v, want b,c = [1 2]", sel)
	}
	if covered != 10 {
		t.Errorf("covered = %d, want 10", covered)
	}
	// The diversity view: Jd(c, a) = 1 (disjoint), and c has the largest
	// dominated set, so the diverse pair of the paper is (c, a).
	if d := p.Jaccard(2, 0); d != 1 {
		t.Errorf("Jd(c, a) = %v, want 1", d)
	}
	if d := p.Jaccard(1, 2); d >= 1 {
		t.Errorf("Jd(b, c) = %v, want < 1", d)
	}
}

func TestIntersectionAndJaccard(t *testing.T) {
	p := figure1Postings()
	if got := p.IntersectionSize(1, 2); got != 3 {
		t.Errorf("b∩c = %d, want 3", got)
	}
	if got := p.IntersectionSize(0, 3); got != 0 {
		t.Errorf("a∩d = %d, want 0", got)
	}
	// |b∩c| = 3, |b∪c| = 10 -> Jd = 0.7.
	if got, want := p.Jaccard(1, 2), 1-3.0/10; got != want {
		t.Errorf("Jd(b,c) = %v, want %v", got, want)
	}
	// Empty lists: identical, distance 0.
	empty := &Postings{Lists: [][]int32{{}, {}}, Rows: 5}
	if got := empty.Jaccard(0, 1); got != 0 {
		t.Errorf("empty Jd = %v, want 0", got)
	}
}

func TestUnionAndCoverageFraction(t *testing.T) {
	p := figure1Postings()
	if got := p.TotalCovered(); got != 11 {
		t.Errorf("TotalCovered = %d, want 11", got)
	}
	if got := p.UnionSize([]int{1, 2}); got != 10 {
		t.Errorf("UnionSize(b,c) = %d, want 10", got)
	}
	if got, want := p.CoverageFraction([]int{1, 2}), 10.0/11; got != want {
		t.Errorf("CoverageFraction = %v, want %v", got, want)
	}
	if got := p.CoverageFraction(nil); got != 0 {
		t.Errorf("empty coverage = %v", got)
	}
}

func TestMinPairwiseJaccard(t *testing.T) {
	p := figure1Postings()
	// Set {a, c}: disjoint -> 1. Set {b, c, d}: the closest pair bounds it.
	if got := p.MinPairwiseJaccard([]int{0, 2}); got != 1 {
		t.Errorf("diversity(a,c) = %v", got)
	}
	bc := p.Jaccard(1, 2)
	cd := p.Jaccard(2, 3)
	bd := p.Jaccard(1, 3)
	want := bc
	if cd < want {
		want = cd
	}
	if bd < want {
		want = bd
	}
	if got := p.MinPairwiseJaccard([]int{1, 2, 3}); got != want {
		t.Errorf("diversity(b,c,d) = %v, want %v", got, want)
	}
}

func TestGreedyValidation(t *testing.T) {
	p := figure1Postings()
	if _, _, err := GreedyMaxCoverage(p, 0); err == nil {
		t.Error("expected error for k=0")
	}
	if _, _, err := GreedyMaxCoverage(p, 5); err == nil {
		t.Error("expected error for k>m")
	}
}

// naiveGreedy recomputes all marginal gains each round; oracle for the lazy
// implementation.
func naiveGreedy(p *Postings, k int) ([]int, int) {
	covered := map[int32]bool{}
	chosen := map[int]bool{}
	var sel []int
	total := 0
	for len(sel) < k {
		best, bestGain := -1, -1
		for j := range p.Lists {
			if chosen[j] {
				continue
			}
			gain := 0
			for _, r := range p.Lists[j] {
				if !covered[r] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = j, gain
			}
		}
		sel = append(sel, best)
		chosen[best] = true
		total += bestGain
		for _, r := range p.Lists[best] {
			covered[r] = true
		}
	}
	return sel, total
}

func TestLazyGreedyMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		m := 5 + r.Intn(20)
		rows := 200
		p := &Postings{Lists: make([][]int32, m), Rows: rows}
		for j := 0; j < m; j++ {
			seen := map[int32]bool{}
			for c := 0; c < r.Intn(60); c++ {
				seen[int32(r.Intn(rows))] = true
			}
			for v := range seen {
				p.Lists[j] = append(p.Lists[j], v)
			}
			sort.Slice(p.Lists[j], func(a, b int) bool { return p.Lists[j][a] < p.Lists[j][b] })
		}
		k := 1 + r.Intn(m)
		lazySel, lazyTotal, err := GreedyMaxCoverage(p, k)
		if err != nil {
			t.Fatal(err)
		}
		naiveSel, naiveTotal := naiveGreedy(p, k)
		// Both implementations break ties by smallest index, so the whole
		// selection sequence must match, not just the objective value.
		if lazyTotal != naiveTotal {
			t.Fatalf("trial %d: lazy total %d != naive %d", trial, lazyTotal, naiveTotal)
		}
		for i := range naiveSel {
			if lazySel[i] != naiveSel[i] {
				t.Fatalf("trial %d: selections diverge: %v vs %v", trial, lazySel, naiveSel)
			}
		}
	}
}

func TestBuildPostingsAgainstNaive(t *testing.T) {
	ds := data.Independent(2000, 3, 77)
	sky := skyline.ComputeSFS(ds)
	p := BuildPostings(ds, sky)
	if len(p.Lists) != len(sky) {
		t.Fatal("wrong list count")
	}
	// Cross-check a few columns against direct dominance checks.
	for j := 0; j < len(sky); j += 7 {
		sp := ds.Point(sky[j])
		want := []int32{}
		inSky := map[int]bool{}
		for _, s := range sky {
			inSky[s] = true
		}
		for i := 0; i < ds.Len(); i++ {
			if !inSky[i] && geom.Dominates(sp, ds.Point(i)) {
				want = append(want, int32(i))
			}
		}
		got := p.Lists[j]
		if len(got) != len(want) {
			t.Fatalf("column %d: %d entries, want %d", j, len(got), len(want))
		}
		for x := range got {
			if got[x] != want[x] {
				t.Fatalf("column %d entry %d: %d != %d", j, x, got[x], want[x])
			}
		}
	}
	scores := p.DominationScores()
	if len(scores) != len(sky) {
		t.Fatal("scores length")
	}
}

// TestCoverageVsDispersionContrast reproduces the Table 1 phenomenon in
// miniature: greedy coverage achieves higher coverage, while its diversity
// is lower than that of a dispersion-style selection on the same postings.
func TestCoverageVsDispersionContrast(t *testing.T) {
	ds := data.Independent(5000, 4, 13)
	sky := skyline.ComputeSFS(ds)
	if len(sky) < 10 {
		t.Skip("skyline too small")
	}
	p := BuildPostings(ds, sky)
	k := 5
	covSel, _, err := GreedyMaxCoverage(p, k)
	if err != nil {
		t.Fatal(err)
	}
	// Dispersion-style greedy directly on exact Jaccard distances.
	divSel := []int{0}
	for j := range p.Lists {
		if len(p.Lists[j]) > len(p.Lists[divSel[0]]) {
			divSel[0] = j
		}
	}
	for len(divSel) < k {
		best, bestD := -1, -1.0
		for j := range p.Lists {
			skip := false
			for _, s := range divSel {
				if s == j {
					skip = true
				}
			}
			if skip {
				continue
			}
			minD := 2.0
			for _, s := range divSel {
				if d := p.Jaccard(j, s); d < minD {
					minD = d
				}
			}
			if minD > bestD {
				best, bestD = j, minD
			}
		}
		divSel = append(divSel, best)
	}
	covCoverage := p.CoverageFraction(covSel)
	divCoverage := p.CoverageFraction(divSel)
	covDiversity := p.MinPairwiseJaccard(covSel)
	divDiversity := p.MinPairwiseJaccard(divSel)
	if covCoverage < divCoverage {
		t.Errorf("coverage alg coverage %v < dispersion's %v", covCoverage, divCoverage)
	}
	if divDiversity <= covDiversity {
		t.Errorf("dispersion diversity %v not above coverage's %v", divDiversity, covDiversity)
	}
}

func BenchmarkGreedyMaxCoverage(b *testing.B) {
	ds := data.Independent(20000, 4, 1)
	sky := skyline.ComputeSFS(ds)
	p := BuildPostings(ds, sky)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GreedyMaxCoverage(p, 10); err != nil {
			b.Fatal(err)
		}
	}
}
