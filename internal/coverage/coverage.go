// Package coverage implements the greedy k-max-coverage baseline the paper
// contrasts k-dispersion against (Section 2, Table 1): select k skyline
// points maximizing the number of distinct non-skyline points dominated by
// at least one of them, in the spirit of Lin et al.'s "selecting stars"
// (cited as [21]).
//
// The package operates on explicit posting lists (Γ(p) as a sorted row-id
// list per skyline point), built in a single pass over the dataset, and uses
// CELF-style lazy evaluation of marginal gains, exploiting submodularity so
// that most candidates are not rescanned every round.
package coverage

import (
	"container/heap"
	"fmt"
	"sort"

	"skydiver/internal/data"
	"skydiver/internal/geom"
)

// Postings holds, for each skyline point, the sorted ids of the rows it
// dominates, together with the number of rows of the underlying dataset.
type Postings struct {
	// Lists[j] is the sorted slice of row ids dominated by skyline point j.
	Lists [][]int32
	// Rows is the dataset cardinality n.
	Rows int
}

// BuildPostings scans the dataset once and materializes Γ(p) for every
// skyline point. sky holds dataset indexes of the skyline points. Memory is
// proportional to the number of (row, dominator) pairs, so this is meant for
// the moderate scales of the Table 1 experiment; the SkyDiver pipelines
// never materialize these lists.
func BuildPostings(ds *data.Dataset, sky []int) *Postings {
	p := &Postings{Lists: make([][]int32, len(sky)), Rows: ds.Len()}
	skyPts := make([][]float64, len(sky))
	for j, s := range sky {
		skyPts[j] = ds.Point(s)
	}
	inSky := make(map[int]bool, len(sky))
	for _, s := range sky {
		inSky[s] = true
	}
	for i := 0; i < ds.Len(); i++ {
		if inSky[i] {
			continue
		}
		x := ds.Point(i)
		for j, sp := range skyPts {
			if geom.Dominates(sp, x) {
				p.Lists[j] = append(p.Lists[j], int32(i))
			}
		}
	}
	// Row ids are appended in increasing order, but keep the invariant
	// explicit for callers that build postings differently.
	for j := range p.Lists {
		if !sort.SliceIsSorted(p.Lists[j], func(a, b int) bool { return p.Lists[j][a] < p.Lists[j][b] }) {
			sort.Slice(p.Lists[j], func(a, b int) bool { return p.Lists[j][a] < p.Lists[j][b] })
		}
	}
	return p
}

// DominationScores returns |Γ(p)| per skyline point.
func (p *Postings) DominationScores() []float64 {
	out := make([]float64, len(p.Lists))
	for j, l := range p.Lists {
		out[j] = float64(len(l))
	}
	return out
}

// TotalCovered returns the number of distinct rows dominated by at least one
// skyline point (the denominator of the Table 1 coverage percentages).
func (p *Postings) TotalCovered() int {
	return p.UnionSize(allIndexes(len(p.Lists)))
}

// UnionSize returns |∪_{j∈set} Γ(j)|.
func (p *Postings) UnionSize(set []int) int {
	covered := newBitset(p.Rows)
	total := 0
	for _, j := range set {
		for _, r := range p.Lists[j] {
			if !covered.get(int(r)) {
				covered.set(int(r))
				total++
			}
		}
	}
	return total
}

// CoverageFraction returns |∪_{j∈set} Γ(j)| divided by the total number of
// dominated rows — the "coverage" column of Table 1.
func (p *Postings) CoverageFraction(set []int) float64 {
	total := p.TotalCovered()
	if total == 0 {
		return 0
	}
	return float64(p.UnionSize(set)) / float64(total)
}

// IntersectionSize returns |Γ(i) ∩ Γ(j)| by merging the sorted lists.
func (p *Postings) IntersectionSize(i, j int) int {
	a, b := p.Lists[i], p.Lists[j]
	n := 0
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] < b[y]:
			x++
		case a[x] > b[y]:
			y++
		default:
			n++
			x++
			y++
		}
	}
	return n
}

// Jaccard returns the exact Jaccard distance between the dominated sets of
// skyline points i and j. Two empty dominated sets have distance 0
// (identical sets).
func (p *Postings) Jaccard(i, j int) float64 {
	inter := p.IntersectionSize(i, j)
	union := len(p.Lists[i]) + len(p.Lists[j]) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// MinPairwiseJaccard returns the minimum exact Jaccard distance within the
// set — the "diversity" column of Table 1.
func (p *Postings) MinPairwiseJaccard(set []int) float64 {
	best := 1.0
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if d := p.Jaccard(set[i], set[j]); d < best {
				best = d
			}
		}
	}
	return best
}

// gainItem is a lazy-greedy priority-queue element.
type gainItem struct {
	idx   int // skyline point index
	gain  int // marginal gain when last evaluated
	round int // selection round of the last evaluation
}

type gainHeap []gainItem

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].idx < h[j].idx // deterministic tie-break
}
func (h gainHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)   { *h = append(*h, x.(gainItem)) }
func (h *gainHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// GreedyMaxCoverage selects k skyline points greedily maximizing marginal
// coverage, using lazy evaluation: a candidate's cached gain can only shrink
// as the covered set grows (submodularity), so a candidate whose cached gain
// is stale is re-evaluated only when it surfaces at the top of the heap.
// It returns the selected indexes in selection order and the number of
// distinct rows they cover. The greedy solution is a (1−1/e)-approximation
// in general, and better for the finite-VC-dimension set systems of
// dominance regions (Lemma 1).
func GreedyMaxCoverage(p *Postings, k int) ([]int, int, error) {
	m := len(p.Lists)
	if k < 1 {
		return nil, 0, fmt.Errorf("coverage: non-positive k %d", k)
	}
	if k > m {
		return nil, 0, fmt.Errorf("coverage: k %d exceeds skyline size %d", k, m)
	}
	covered := newBitset(p.Rows)
	h := make(gainHeap, m)
	for j := range p.Lists {
		h[j] = gainItem{idx: j, gain: len(p.Lists[j]), round: 0}
	}
	heap.Init(&h)
	selected := make([]int, 0, k)
	total := 0
	for round := 1; len(selected) < k; round++ {
		for {
			top := h[0]
			if top.round == round {
				heap.Pop(&h)
				selected = append(selected, top.idx)
				total += top.gain
				for _, r := range p.Lists[top.idx] {
					covered.set(int(r))
				}
				break
			}
			// Stale: recompute the marginal gain and push back.
			gain := 0
			for _, r := range p.Lists[top.idx] {
				if !covered.get(int(r)) {
					gain++
				}
			}
			h[0].gain = gain
			h[0].round = round
			heap.Fix(&h, 0)
		}
	}
	return selected, total, nil
}

// bitset is a dense bitmap over row ids.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func allIndexes(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}
