package exp

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample accessors")
	}
	s.Add(2)
	s.Add(4)
	s.Add(6)
	if s.N() != 3 || s.Mean() != 4 {
		t.Errorf("mean = %v", s.Mean())
	}
	if got := s.Stddev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", got)
	}
	if s.Min() != 2 || s.Max() != 6 {
		t.Error("min/max")
	}
	if !strings.Contains(s.String(), "±") {
		t.Error("multi-sample String must include ±")
	}
	var one Sample
	one.AddDuration(1500 * time.Millisecond)
	if one.Mean() != 1.5 || strings.Contains(one.String(), "±") {
		t.Error("single sample rendering")
	}
}

// TestSampleQuick: mean lies within [min, max] and stddev is non-negative
// for arbitrary inputs.
func TestSampleQuick(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			// Skip inputs whose sum would overflow float64 — the property
			// concerns ordinary measurements, not ±1e308 extremes.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				return true
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9 && s.Stddev() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunDynamicTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tabs, err := RunDynamic(tinyEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs[0].Rows) != 4 {
		t.Fatalf("dynamic rows = %d", len(tabs[0].Rows))
	}
}
