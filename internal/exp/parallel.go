package exp

import (
	"fmt"
	"runtime"
	"time"

	"skydiver/internal/core"
	"skydiver/internal/minhash"
)

func init() {
	Registry = append(Registry, Runner{
		ID:          "parallel",
		Description: "Extension (paper future work): parallel index-free fingerprinting speedup",
		Run:         RunParallel,
	})
}

// RunParallel measures the speedup of SigGenIFParallel over the sequential
// SigGen-IF, the "parallelization aspects of our methodology" the paper
// lists as future work (Section 6). Output is verified to be bit-identical
// to the sequential pass, so the speedup is free of accuracy cost.
func RunParallel(e *Env) ([]*Table, error) {
	t := &Table{
		Title: "Extension: parallel SigGen-IF speedup (t=100)",
		Note: fmt.Sprintf("scale=%.3g; GOMAXPROCS=%d; identical signatures at every worker count",
			e.Scale, runtime.GOMAXPROCS(0)),
		Header: []string{"data", "workers", "cpu (s)", "speedup"},
	}
	specs := []struct {
		kind   datasetKind
		paperN int
		dims   int
	}{
		{kindIND, paperSyntheticN, 4},
		{kindANT, paperSyntheticN, 4},
	}
	workerCounts := []int{1, 2, 4, 8}
	for _, spec := range specs {
		p, err := e.Prepare(spec.kind, spec.paperN, spec.dims)
		if err != nil {
			return nil, err
		}
		var base time.Duration
		for _, w := range workerCounts {
			fam, err := minhash.NewFamily(100, e.Seed)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := core.SigGenIFParallel(p.Data, p.Sky, fam, w); err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			if w == 1 {
				base = elapsed
			}
			t.AddRow(fmt.Sprintf("%v-%dD", spec.kind, spec.dims), w,
				seconds(elapsed), fmt.Sprintf("%.2fx", base.Seconds()/elapsed.Seconds()))
		}
	}
	return []*Table{t}, nil
}
