package exp

import (
	"fmt"
	"math"
	"time"

	"skydiver/internal/core"
	"skydiver/internal/coverage"
	"skydiver/internal/dispersion"
	"skydiver/internal/minhash"
)

func init() {
	Registry = append(Registry, Runner{
		ID:          "ablation",
		Description: "Ablations: selection seeding strategy, and MinHash estimate error vs signature size",
		Run:         RunAblation,
	})
}

// RunAblation probes two design choices DESIGN.md calls out:
//
//  1. Seeding the greedy selection with the maximum-domination-score point
//     (the paper's O(k²m) variant, Section 4.2.1) versus the classic
//     farthest-pair seed of Ravi et al. (O(m²)). Both are 2-approximations;
//     the ablation measures the quality difference and the cost of the
//     quadratic seed scan.
//  2. The accuracy of the MinHash Jaccard estimate as the signature size
//     shrinks — the mechanism behind the paper's Figure 12/13 observation
//     that "simply reducing the signature size does not give promising
//     results".
func RunAblation(e *Env) ([]*Table, error) {
	seedTab := &Table{
		Title:  "Ablation: max-score seed (paper) vs farthest-pair seed (classic)",
		Note:   fmt.Sprintf("scale=%.3g; k=10; MinHash t=100; quality = min exact Jd", e.Scale),
		Header: []string{"data", "paper quality", "paper select cpu", "classic quality", "classic select cpu"},
	}
	errTab := &Table{
		Title:  "Ablation: MinHash estimate error vs signature size",
		Note:   "mean / max absolute error of estimated Jd against exact Jd over sampled skyline pairs",
		Header: []string{"data", "t", "mean |err|", "max |err|"},
	}
	specs := []struct {
		kind   datasetKind
		paperN int
		dims   int
		label  string
	}{
		{kindIND, paperSyntheticN, 4, "IND4D"},
		{kindFC, paperFCN, 5, "FC5D"},
	}
	for _, spec := range specs {
		p, err := e.Prepare(spec.kind, spec.paperN, spec.dims)
		if err != nil {
			return nil, err
		}
		m := len(p.Sky)
		k := 10
		if k > m {
			k = m
		}
		fam, err := minhash.NewFamily(100, e.Seed)
		if err != nil {
			return nil, err
		}
		fp, err := core.SigGenIF(p.Data, p.Sky, fam)
		if err != nil {
			return nil, err
		}
		dist := func(i, j int) float64 { return fp.Matrix.EstimateJd(i, j) }
		oracle := core.NewExactOracle(p.Tree, p.Data, p.Sky)

		start := time.Now()
		paperSel, err := dispersion.SelectDiverseSet(m, k, dist, fp.DomScore)
		if err != nil {
			return nil, err
		}
		paperCPU := time.Since(start)
		start = time.Now()
		classicSel, err := dispersion.SelectDiverseSetFarthestSeed(m, k, dist)
		if err != nil {
			return nil, err
		}
		classicCPU := time.Since(start)
		paperQ, err := oracle.MinPairwiseJd(paperSel)
		if err != nil {
			return nil, err
		}
		classicQ, err := oracle.MinPairwiseJd(classicSel)
		if err != nil {
			return nil, err
		}
		seedTab.AddRow(spec.label,
			fmt.Sprintf("%.3f", paperQ), seconds(paperCPU),
			fmt.Sprintf("%.3f", classicQ), seconds(classicCPU))

		// Estimate error sweep: exact distances from explicit postings.
		post := coverage.BuildPostings(p.Data, p.Sky)
		for _, tSig := range []int{20, 50, 100, 200, 400} {
			famT, err := minhash.NewFamily(tSig, e.Seed)
			if err != nil {
				return nil, err
			}
			fpT, err := core.SigGenIF(p.Data, p.Sky, famT)
			if err != nil {
				return nil, err
			}
			var sum, maxErr float64
			pairs := 0
			for i := 0; i < m && pairs < 500; i += 2 {
				for j := i + 1; j < m && pairs < 500; j += 3 {
					errAbs := math.Abs(fpT.Matrix.EstimateJd(i, j) - post.Jaccard(i, j))
					sum += errAbs
					if errAbs > maxErr {
						maxErr = errAbs
					}
					pairs++
				}
			}
			errTab.AddRow(spec.label, tSig,
				fmt.Sprintf("%.4f", sum/float64(pairs)),
				fmt.Sprintf("%.4f", maxErr))
		}
	}
	return []*Table{seedTab, errTab}, nil
}
