package exp

import (
	"fmt"
	"math"
	"time"

	"skydiver/internal/core"
	"skydiver/internal/coverage"
	"skydiver/internal/data"
	"skydiver/internal/dispersion"
	"skydiver/internal/geom"
	"skydiver/internal/minhash"
	"skydiver/internal/pager"
	"skydiver/internal/skyline"
)

// Runner is a named experiment.
type Runner struct {
	// ID is the experiment identifier (table1, fig8, ... sparsity).
	ID string
	// Description summarizes what the experiment reproduces.
	Description string
	// Run executes the experiment.
	Run func(e *Env) ([]*Table, error)
}

// Registry lists all experiments in paper order.
var Registry = []Runner{
	{"table1", "Table 1: k-max-coverage vs k-dispersion (coverage and diversity)", RunTable1},
	{"fig2", "Figure 2: solutions of 3-MSDP vs 3-MMDP on a 2D toy set", RunFig2},
	{"fig8", "Figure 8: MinHash signature generation time vs signature size (FC, REC; IB vs IF)", RunFig8},
	{"fig9", "Figure 9: signature generation (t=100) vs cardinality and dimensionality (IND, ANT)", RunFig9},
	{"fig10", "Figure 10: runtime for k=10 diverse points vs dimensionality (BF, SG, MH100, LSH100)", RunFig10},
	{"fig11", "Figure 11: runtime vs number of diverse points k (SG, MH100, LSH100)", RunFig11},
	{"fig12", "Figure 12: quality (min exact Jaccard distance) vs k (SG, MH100, LSH100)", RunFig12},
	{"fig13", "Figure 13: LSH vs MinHashing memory/quality trade-off (k=10)", RunFig13},
	{"sparsity", "Section 3.2: domination-matrix sparsity of 10K uniform points at d=3,5,7", RunSparsity},
}

// Lookup returns the runner with the given id, or nil.
func Lookup(id string) *Runner {
	for i := range Registry {
		if Registry[i].ID == id {
			return &Registry[i]
		}
	}
	return nil
}

// table1Ks are the k values of Table 1.
var table1Ks = []int{2, 10, 50}

// RunTable1 reproduces Table 1: for IND 5M 4D, FC 5D and REC 5D, the
// coverage and diversity achieved by greedy k-max-coverage versus greedy
// k-dispersion over exact Jaccard distances of the Γ sets.
func RunTable1(e *Env) ([]*Table, error) {
	t := &Table{
		Title:  "Table 1: k-max-coverage vs k-dispersion",
		Note:   fmt.Sprintf("scale=%.3g; coverage = fraction of dominated points covered; diversity = min pairwise exact Jaccard distance", e.Scale),
		Header: []string{"data", "k", "maxcov coverage", "maxcov diversity", "dispersion coverage", "dispersion diversity"},
	}
	specs := []struct {
		kind   datasetKind
		paperN int
		dims   int
		label  string
	}{
		{kindIND, paperSyntheticN, 4, "IND5M4D"},
		{kindFC, paperFCN, 5, "FC5D"},
		{kindREC, paperRECN, 5, "REC5D"},
	}
	for _, spec := range specs {
		p, err := e.Prepare(spec.kind, spec.paperN, spec.dims)
		if err != nil {
			return nil, err
		}
		post := coverage.BuildPostings(p.Data, p.Sky)
		scores := post.DominationScores()
		m := len(p.Sky)
		for _, k := range table1Ks {
			if k > m {
				t.AddRow(spec.label, k, dnf, dnf, dnf, dnf)
				continue
			}
			covSel, _, err := coverage.GreedyMaxCoverage(post, k)
			if err != nil {
				return nil, err
			}
			dispSel, err := dispersion.SelectDiverseSet(m, k, post.Jaccard, scores)
			if err != nil {
				return nil, err
			}
			t.AddRow(spec.label, k,
				fmt.Sprintf("%.1f%%", 100*post.CoverageFraction(covSel)),
				fmt.Sprintf("%.3f", post.MinPairwiseJaccard(covSel)),
				fmt.Sprintf("%.1f%%", 100*post.CoverageFraction(dispSel)),
				fmt.Sprintf("%.3f", post.MinPairwiseJaccard(dispSel)))
		}
	}
	return []*Table{t}, nil
}

// RunFig2 reproduces the Figure 2 illustration: on a small 2D configuration,
// 3-MSDP and 3-MMDP (brute force, L2 distance) return different shapes —
// max-min avoids the close pair that max-sum tolerates.
func RunFig2(e *Env) ([]*Table, error) {
	pts := [][2]float64{{0, 0}, {1, 0}, {5, 0}, {9, 0}, {10, 0}}
	names := []string{"a", "b", "c", "d", "e"}
	dist := func(i, j int) float64 {
		dx := pts[i][0] - pts[j][0]
		dy := pts[i][1] - pts[j][1]
		return math.Sqrt(dx*dx + dy*dy)
	}
	t := &Table{
		Title:  "Figure 2: 3-MSDP vs 3-MMDP",
		Note:   "five collinear points at x = 0, 1, 5, 9, 10; L2 distance",
		Header: []string{"objective", "selected", "min pairwise", "sum pairwise"},
	}
	for _, obj := range []dispersion.Objective{dispersion.MaxSum, dispersion.MaxMin} {
		set, _, err := dispersion.BruteForce(len(pts), 3, dist, obj)
		if err != nil {
			return nil, err
		}
		label := ""
		for _, s := range set {
			label += names[s]
		}
		t.AddRow(obj.String(), label,
			fmt.Sprintf("%.2f", dispersion.MinPairwise(set, dist)),
			fmt.Sprintf("%.2f", dispersion.SumPairwise(set, dist)))
	}
	return []*Table{t}, nil
}

// fig8Sizes are the signature sizes of Figure 8.
var fig8Sizes = []int{50, 100, 200, 400}

// sigGenCell runs one signature generation (IF or IB) and returns CPU and
// total time.
func sigGenCell(p *Prepared, t int, seed int64, indexBased bool) (cpu, total time.Duration, err error) {
	fam, err := minhash.NewFamily(t, seed)
	if err != nil {
		return 0, 0, err
	}
	var fp *core.Fingerprint
	start := time.Now()
	if indexBased {
		p.coldCache()
		fp, err = core.SigGenIB(p.Tree, p.Data, p.Sky, fam)
	} else {
		fp, err = core.SigGenIF(p.Data, p.Sky, fam)
	}
	if err != nil {
		return 0, 0, err
	}
	cpu = time.Since(start)
	total = cpu + core.Stats{IO: fp.IO, Model: pager.DefaultCostModel()}.IOTime()
	return cpu, total, nil
}

// RunFig8 reproduces Figure 8: signature generation time as a function of
// the signature size for FC and REC at all dimensionalities, IB vs IF.
func RunFig8(e *Env) ([]*Table, error) {
	var out []*Table
	specs := []struct {
		kind   datasetKind
		paperN int
		label  string
	}{
		{kindFC, paperFCN, "FC"},
		{kindREC, paperRECN, "REC"},
	}
	for _, spec := range specs {
		t := &Table{
			Title:  fmt.Sprintf("Figure 8: %s — signature generation time vs signature size", spec.label),
			Note:   fmt.Sprintf("scale=%.3g; total time = CPU + 8ms per page fault", e.Scale),
			Header: []string{"dims", "t", "IB total (s)", "IF total (s)", "IB cpu (s)", "IF cpu (s)"},
		}
		for _, dims := range []int{4, 5, 7} {
			p, err := e.Prepare(spec.kind, spec.paperN, dims)
			if err != nil {
				return nil, err
			}
			for _, tSig := range fig8Sizes {
				ibCPU, ibTotal, err := sigGenCell(p, tSig, e.Seed, true)
				if err != nil {
					return nil, err
				}
				ifCPU, ifTotal, err := sigGenCell(p, tSig, e.Seed, false)
				if err != nil {
					return nil, err
				}
				t.AddRow(dims, tSig, seconds(ibTotal), seconds(ifTotal), seconds(ibCPU), seconds(ifCPU))
			}
		}
		out = append(out, t)
	}
	return out, nil
}

// fig9Cardinalities are the paper cardinalities of Figure 9(a)-(b).
var fig9Cardinalities = []int{1_000_000, 2_000_000, 5_000_000, 7_000_000}

// fig9Dims are the dimensionalities of Figure 9(c)-(d).
var fig9Dims = []int{2, 3, 4, 6}

// RunFig9 reproduces Figure 9: signature generation (t = 100) for IND and
// ANT, CPU and total time, versus cardinality (d = 4) and versus
// dimensionality (default cardinality).
func RunFig9(e *Env) ([]*Table, error) {
	const tSig = 100
	type cell struct{ cpu, total [2]time.Duration } // [IB, IF]
	run := func(kind datasetKind, paperN, dims int) (cell, error) {
		p, err := e.Prepare(kind, paperN, dims)
		if err != nil {
			return cell{}, err
		}
		var c cell
		c.cpu[0], c.total[0], err = sigGenCell(p, tSig, e.Seed, true)
		if err != nil {
			return cell{}, err
		}
		c.cpu[1], c.total[1], err = sigGenCell(p, tSig, e.Seed, false)
		if err != nil {
			return cell{}, err
		}
		return c, nil
	}
	cardCPU := &Table{
		Title:  "Figure 9(a): CPU time vs cardinality (d=4, t=100)",
		Note:   fmt.Sprintf("scale=%.3g applied to the paper cardinalities", e.Scale),
		Header: []string{"cardinality", "IND-IB", "IND-IF", "ANT-IB", "ANT-IF"},
	}
	cardTotal := &Table{
		Title:  "Figure 9(b): total time vs cardinality (d=4, t=100)",
		Header: []string{"cardinality", "IND-IB", "IND-IF", "ANT-IB", "ANT-IF"},
	}
	for _, paperN := range fig9Cardinalities {
		ind, err := run(kindIND, paperN, 4)
		if err != nil {
			return nil, err
		}
		ant, err := run(kindANT, paperN, 4)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%dM (x%.3g)", paperN/1_000_000, e.Scale)
		cardCPU.AddRow(label, seconds(ind.cpu[0]), seconds(ind.cpu[1]), seconds(ant.cpu[0]), seconds(ant.cpu[1]))
		cardTotal.AddRow(label, seconds(ind.total[0]), seconds(ind.total[1]), seconds(ant.total[0]), seconds(ant.total[1]))
	}
	dimCPU := &Table{
		Title:  "Figure 9(c): CPU time vs dimensionality (default cardinality, t=100)",
		Header: []string{"dims", "IND-IB", "IND-IF", "ANT-IB", "ANT-IF"},
	}
	dimTotal := &Table{
		Title:  "Figure 9(d): total time vs dimensionality (default cardinality, t=100)",
		Header: []string{"dims", "IND-IB", "IND-IF", "ANT-IB", "ANT-IF"},
	}
	for _, dims := range fig9Dims {
		ind, err := run(kindIND, paperSyntheticN, dims)
		if err != nil {
			return nil, err
		}
		ant, err := run(kindANT, paperSyntheticN, dims)
		if err != nil {
			return nil, err
		}
		dimCPU.AddRow(dims, seconds(ind.cpu[0]), seconds(ind.cpu[1]), seconds(ant.cpu[0]), seconds(ant.cpu[1]))
		dimTotal.AddRow(dims, seconds(ind.total[0]), seconds(ind.total[1]), seconds(ant.total[0]), seconds(ant.total[1]))
	}
	return []*Table{cardCPU, cardTotal, dimCPU, dimTotal}, nil
}

// runAlgo executes one end-to-end diversification cell and returns its total
// time string (or DNF when capped).
func (e *Env) runAlgo(p *Prepared, algo string, k int) (string, *core.Result, error) {
	in := p.Input()
	m := len(p.Sky)
	cfg := core.Config{K: k, SignatureSize: 100, Seed: e.Seed, Mode: core.IndexBased}
	var res *core.Result
	var err error
	switch algo {
	case "BF":
		// The enumeration for k=2 is the pairwise matrix itself; larger k
		// multiplies the subsets. Only the matrix cost is capped, as k is
		// fixed to 2 in Figure 10 per the paper.
		if m*(m-1)/2 > e.BFPairCap {
			return dnf, nil, nil
		}
		p.coldCache()
		res, err = core.BruteForce(in, cfg)
	case "SG":
		if k*m > e.SGQueryCap {
			return dnf, nil, nil
		}
		p.coldCache()
		res, err = core.SimpleGreedy(in, cfg)
	case "MH":
		p.coldCache()
		res, err = core.SkyDiverMH(in, cfg)
	case "LSH":
		p.coldCache()
		res, err = core.SkyDiverLSH(in, cfg)
	default:
		return "", nil, fmt.Errorf("exp: unknown algorithm %q", algo)
	}
	if err != nil {
		return "", nil, err
	}
	return seconds(res.Stats.Total()), res, nil
}

// RunFig10 reproduces Figure 10: end-to-end runtime for k = 10 diverse
// points (k = 2 for BF) versus dimensionality, per dataset family. BF is
// omitted for ANT, exactly as in the paper.
func RunFig10(e *Env) ([]*Table, error) {
	var out []*Table
	families := []struct {
		kind   datasetKind
		paperN int
		dims   []int
		withBF bool
	}{
		{kindIND, paperSyntheticN, []int{2, 3, 4, 6}, true},
		{kindANT, paperSyntheticN, []int{2, 3, 4, 6}, false},
		{kindFC, paperFCN, []int{4, 5, 7}, true},
		{kindREC, paperRECN, []int{4, 5, 7}, true},
	}
	for _, fam := range families {
		header := []string{"dims", "m"}
		if fam.withBF {
			header = append(header, "BF k=2 (s)")
		}
		header = append(header, "SG (s)", "MH100 (s)", "LSH100 (s)")
		t := &Table{
			Title:  fmt.Sprintf("Figure 10: %s — runtime for k=10 vs dimensionality", fam.kind),
			Note:   fmt.Sprintf("scale=%.3g; total time incl. signature generation (IB); BF runs k=2 as in the paper", e.Scale),
			Header: header,
		}
		for _, dims := range fam.dims {
			p, err := e.Prepare(fam.kind, fam.paperN, dims)
			if err != nil {
				return nil, err
			}
			m := len(p.Sky)
			k := 10
			if k > m {
				k = m
			}
			row := []any{dims, m}
			if fam.withBF {
				kbf := 2
				if kbf > m {
					kbf = m
				}
				cell, _, err := e.runAlgo(p, "BF", kbf)
				if err != nil {
					return nil, err
				}
				row = append(row, cell)
			}
			for _, algo := range []string{"SG", "MH", "LSH"} {
				cell, _, err := e.runAlgo(p, algo, k)
				if err != nil {
					return nil, err
				}
				row = append(row, cell)
			}
			t.AddRow(row...)
			e.logf("fig10 %s d=%d done", fam.kind, dims)
		}
		out = append(out, t)
	}
	return out, nil
}

// figKs are the k values of Figures 11 and 12.
var figKs = []int{2, 5, 10, 50}

// defaultFamilies are the per-family defaults (underlined in Table 4).
var defaultFamilies = []struct {
	kind   datasetKind
	paperN int
	dims   int
}{
	{kindIND, paperSyntheticN, 4},
	{kindANT, paperSyntheticN, 4},
	{kindFC, paperFCN, 5},
	{kindREC, paperRECN, 5},
}

// kSweep runs SG/MH/LSH over the k values for one dataset, returning per-k
// total time and exact quality. Results are memoized per env so Figures 11
// and 12 share one sweep.
type kSweepCell struct {
	time    string
	quality string
}

func (e *Env) kSweep(kind datasetKind, paperN, dims int) (map[string]map[int]kSweepCell, error) {
	key := fmt.Sprintf("ksweep-%v-%d-%d", kind, paperN, dims)
	if e.cache == nil {
		e.cache = make(map[string]*Prepared)
	}
	if e.memo == nil {
		e.memo = make(map[string]any)
	}
	if v, ok := e.memo[key]; ok {
		return v.(map[string]map[int]kSweepCell), nil
	}
	p, err := e.Prepare(kind, paperN, dims)
	if err != nil {
		return nil, err
	}
	oracle := core.NewExactOracle(p.Tree, p.Data, p.Sky)
	out := map[string]map[int]kSweepCell{}
	for _, algo := range []string{"SG", "MH", "LSH"} {
		out[algo] = map[int]kSweepCell{}
		for _, k := range figKs {
			if k > len(p.Sky) {
				out[algo][k] = kSweepCell{dnf, dnf}
				continue
			}
			cell, res, err := e.runAlgo(p, algo, k)
			if err != nil {
				return nil, err
			}
			if res == nil {
				out[algo][k] = kSweepCell{dnf, dnf}
				continue
			}
			q, err := oracle.MinPairwiseJd(res.Selected)
			if err != nil {
				return nil, err
			}
			out[algo][k] = kSweepCell{cell, fmt.Sprintf("%.3f", q)}
			e.logf("ksweep %s d=%d %s k=%d done", kind, dims, algo, k)
		}
	}
	e.memo[key] = out
	return out, nil
}

// RunFig11 reproduces Figure 11: runtime versus the number of requested
// diverse points for SG, MH100 and LSH100 on all four dataset families.
func RunFig11(e *Env) ([]*Table, error) {
	return e.kTables("Figure 11", "runtime (s) vs k", func(c kSweepCell) string { return c.time })
}

// RunFig12 reproduces Figure 12: the quality (minimum exact Jaccard
// distance of the selected set) versus k.
func RunFig12(e *Env) ([]*Table, error) {
	return e.kTables("Figure 12", "diversity (min exact Jd) vs k", func(c kSweepCell) string { return c.quality })
}

func (e *Env) kTables(figure, what string, pick func(kSweepCell) string) ([]*Table, error) {
	var out []*Table
	for _, fam := range defaultFamilies {
		sweep, err := e.kSweep(fam.kind, fam.paperN, fam.dims)
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title:  fmt.Sprintf("%s: %s — %s", figure, fam.kind, what),
			Note:   fmt.Sprintf("scale=%.3g; d=%d", e.Scale, fam.dims),
			Header: []string{"k", "SG", "MH100", "LSH100"},
		}
		for _, k := range figKs {
			t.AddRow(k, pick(sweep["SG"][k]), pick(sweep["MH"][k]), pick(sweep["LSH"][k]))
		}
		out = append(out, t)
	}
	return out, nil
}

// fig13Thresholds and fig13Buckets are the LSH parameters of Figure 13;
// fig13MHSizes the MinHash signature sizes shown as horizontal baselines.
var (
	fig13Thresholds = []float64{0.1, 0.2, 0.3, 0.4}
	fig13Buckets    = []int{10, 20, 50}
	fig13MHSizes    = []int{20, 50, 100}
)

// RunFig13 reproduces Figure 13: the memory/accuracy trade-off of LSH
// (signature size 100, varying ξ and B) against plain MinHashing at smaller
// signature sizes, for FC and REC at k = 10.
func RunFig13(e *Env) ([]*Table, error) {
	var out []*Table
	specs := []struct {
		kind   datasetKind
		paperN int
		label  string
	}{
		{kindFC, paperFCN, "FC"},
		{kindREC, paperRECN, "REC"},
	}
	for _, spec := range specs {
		p, err := e.Prepare(spec.kind, spec.paperN, 5)
		if err != nil {
			return nil, err
		}
		k := 10
		if k > len(p.Sky) {
			k = len(p.Sky)
		}
		oracle := core.NewExactOracle(p.Tree, p.Data, p.Sky)
		mem := &Table{
			Title:  fmt.Sprintf("Figure 13(%s): memory (bytes) vs threshold", spec.label),
			Note:   fmt.Sprintf("scale=%.3g; m=%d skyline points; LSH uses t=100; MH rows are threshold-independent", e.Scale, len(p.Sky)),
			Header: []string{"series", "xi=0.1", "xi=0.2", "xi=0.3", "xi=0.4"},
		}
		qual := &Table{
			Title:  fmt.Sprintf("Figure 13(%s): diversity (min exact Jd, k=%d) vs threshold", spec.label, k),
			Header: []string{"series", "xi=0.1", "xi=0.2", "xi=0.3", "xi=0.4"},
		}
		in := p.Input()
		for _, b := range fig13Buckets {
			memRow := []any{fmt.Sprintf("LSH B%d", b)}
			qualRow := []any{fmt.Sprintf("LSH B%d", b)}
			for _, xi := range fig13Thresholds {
				res, err := core.SkyDiverLSH(in, core.Config{
					K: k, SignatureSize: 100, Seed: e.Seed, Mode: core.IndexBased,
					LSHThreshold: xi, LSHBuckets: b,
				})
				if err != nil {
					return nil, err
				}
				q, err := oracle.MinPairwiseJd(res.Selected)
				if err != nil {
					return nil, err
				}
				memRow = append(memRow, res.Stats.MemoryBytes)
				qualRow = append(qualRow, fmt.Sprintf("%.3f", q))
			}
			mem.AddRow(memRow...)
			qual.AddRow(qualRow...)
		}
		for _, tSig := range fig13MHSizes {
			res, err := core.SkyDiverMH(in, core.Config{
				K: k, SignatureSize: tSig, Seed: e.Seed, Mode: core.IndexBased,
			})
			if err != nil {
				return nil, err
			}
			q, err := oracle.MinPairwiseJd(res.Selected)
			if err != nil {
				return nil, err
			}
			memRow := []any{fmt.Sprintf("MH%d", tSig)}
			qualRow := []any{fmt.Sprintf("MH%d", tSig)}
			for range fig13Thresholds {
				memRow = append(memRow, res.Stats.MemoryBytes)
				qualRow = append(qualRow, fmt.Sprintf("%.3f", q))
			}
			mem.AddRow(memRow...)
			qual.AddRow(qualRow...)
		}
		out = append(out, mem, qual)
	}
	return out, nil
}

// RunSparsity reproduces the in-text sparsity numbers of Section 3.2: the
// percentage of zeros in the domination matrix of 10,000 uniformly
// distributed points at 3, 5 and 7 dimensions (paper: 45%, 84%, 97%).
func RunSparsity(e *Env) ([]*Table, error) {
	t := &Table{
		Title:  "Section 3.2: domination-matrix sparsity (10K uniform points)",
		Note:   "paper reports 45% (3D), 84% (5D), 97% (7D)",
		Header: []string{"dims", "m", "zeros"},
	}
	for _, dims := range []int{3, 5, 7} {
		ds := data.Independent(10_000, dims, e.Seed)
		sky := skyline.ComputeSFS(ds)
		inSky := make(map[int]bool, len(sky))
		for _, s := range sky {
			inSky[s] = true
		}
		nnz := 0
		rows := 0
		for i := 0; i < ds.Len(); i++ {
			if inSky[i] {
				continue
			}
			rows++
			p := ds.Point(i)
			for _, s := range sky {
				if geom.Dominates(ds.Point(s), p) {
					nnz++
				}
			}
		}
		zeros := 1 - float64(nnz)/float64(rows*len(sky))
		t.AddRow(dims, len(sky), fmt.Sprintf("%.1f%%", 100*zeros))
	}
	return []*Table{t}, nil
}
