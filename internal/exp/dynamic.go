package exp

import (
	"fmt"
	"math/rand"
	"time"

	"skydiver/internal/dynamic"
)

func init() {
	Registry = append(Registry, Runner{
		ID:          "dynamic",
		Description: "Extension: continuous diversification — window refresh cost vs window size",
		Run:         RunDynamic,
	})
}

// dynamicTrials is the number of refreshes averaged per cell.
const dynamicTrials = 5

// RunDynamic measures the sliding-window monitor (the continuous setting of
// Drosou & Pitoura the paper builds on): the cost of one full refresh —
// window skyline plus index-free fingerprint plus selection — as the window
// grows. Refresh cost is what bounds the query rate a live deployment can
// sustain between stream changes (unchanged windows are served from cache).
func RunDynamic(e *Env) ([]*Table, error) {
	t := &Table{
		Title:  "Extension: continuous diversification — refresh cost vs window size",
		Note:   fmt.Sprintf("k=5, t=100, d=3, IND stream; mean ± sd over %d refreshes", dynamicTrials),
		Header: []string{"window", "skyline m", "refresh (s)"},
	}
	rng := rand.New(rand.NewSource(e.Seed))
	for _, window := range []int{1_000, 5_000, 20_000, 50_000} {
		mon, err := dynamic.NewMonitor(3, window, 5, 100, e.Seed)
		if err != nil {
			return nil, err
		}
		// Fill the window.
		for i := 0; i < window; i++ {
			if _, err := mon.Add([]float64{rng.Float64(), rng.Float64(), rng.Float64()}); err != nil {
				return nil, err
			}
		}
		var refresh Sample
		m := 0
		for trial := 0; trial < dynamicTrials; trial++ {
			// Advance the stream so the cache invalidates, then time the
			// refresh through a query.
			if _, err := mon.Add([]float64{rng.Float64(), rng.Float64(), rng.Float64()}); err != nil {
				return nil, err
			}
			start := time.Now()
			sky, err := mon.Skyline()
			if err != nil {
				return nil, err
			}
			if _, err := mon.Diverse(); err != nil {
				return nil, err
			}
			refresh.AddDuration(time.Since(start))
			m = len(sky)
		}
		t.AddRow(window, m, refresh.String())
	}
	return []*Table{t}, nil
}
