package exp

import (
	"fmt"
	"math"
	"time"
)

// Sample accumulates repeated measurements of one quantity and reports
// mean ± standard deviation, for experiments run with multiple trials.
type Sample struct {
	values []float64
}

// Add records one measurement.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// AddDuration records one duration measurement in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of measurements.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the sample mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range s.values {
		total += v
	}
	return total / float64(len(s.values))
}

// Stddev returns the sample standard deviation (0 for fewer than two
// measurements).
func (s *Sample) Stddev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	ss := 0.0
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min and Max return the extremes (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest measurement (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// String renders "mean ± sd" with adaptive precision; single measurements
// render bare.
func (s *Sample) String() string {
	if len(s.values) <= 1 {
		return fmt.Sprintf("%.4g", s.Mean())
	}
	return fmt.Sprintf("%.4g ± %.2g", s.Mean(), s.Stddev())
}
