package exp

import (
	"math"
	"strings"
	"testing"
)

func TestTableChart(t *testing.T) {
	tab := &Table{
		Title:  "Figure X: runtime",
		Header: []string{"dims", "m", "SG (s)", "MH100 (s)"},
	}
	tab.AddRow(2, 11, "3.40", "1.44")
	tab.AddRow(3, 84, "357", "DNF")
	chart, err := TableChart(tab, true)
	if err != nil {
		t.Fatal(err)
	}
	// "m" skipped; two series remain.
	if len(chart.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(chart.Series))
	}
	if chart.Series[0].Name != "SG (s)" {
		t.Errorf("series name %q", chart.Series[0].Name)
	}
	if !math.IsNaN(chart.Series[1].Y[1]) {
		t.Error("DNF must become NaN")
	}
	out, err := chart.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure X") {
		t.Error("title missing")
	}
}

func TestTableChartPercentAndErrors(t *testing.T) {
	tab := &Table{Title: "pct", Header: []string{"k", "coverage"}}
	tab.AddRow(2, "95.3%")
	chart, err := TableChart(tab, false)
	if err != nil {
		t.Fatal(err)
	}
	if chart.Series[0].Y[0] != 95.3 {
		t.Errorf("percent parsing: %v", chart.Series[0].Y[0])
	}
	empty := &Table{Title: "e", Header: []string{"x", "y"}}
	if _, err := TableChart(empty, false); err == nil {
		t.Error("expected error for empty table")
	}
	text := &Table{Title: "t", Header: []string{"x", "label"}}
	text.AddRow("a", "hello")
	if _, err := TableChart(text, false); err == nil {
		t.Error("expected error for non-numeric table")
	}
	speed := &Table{Title: "s", Header: []string{"w", "speedup"}}
	speed.AddRow(1, "1.35x")
	chart, err = TableChart(speed, false)
	if err != nil || chart.Series[0].Y[0] != 1.35 {
		t.Error("speedup suffix parsing broken")
	}
}
