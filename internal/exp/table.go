package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is one result table of an experiment, renderable as markdown or CSV.
type Table struct {
	// Title names the table (e.g. "Figure 10(a): IND — runtime vs dims").
	Title string
	// Note is an optional caption (parameters, scale, caveats).
	Note string
	// Header holds the column names.
	Header []string
	// Rows holds the data cells, already formatted.
	Rows [][]string
}

// AddRow appends a row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// WriteMarkdown renders the table as GitHub-flavored markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n\n", t.Note); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	pad := func(s string, w int) string { return s + strings.Repeat(" ", w-len(s)) }
	cells := make([]string, len(t.Header))
	for i, h := range t.Header {
		cells[i] = pad(h, widths[i])
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
		return err
	}
	for i := range cells {
		cells[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		for i := range cells {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			cells[i] = pad(c, widths[i])
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (quoted only when needed).
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := make([]string, len(t.Header))
	for i, h := range t.Header {
		row[i] = esc(h)
	}
	if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		cells := make([]string, len(r))
		for i, c := range r {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}
