package exp

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"skydiver/internal/plot"
)

// TableChart converts an experiment table into an ASCII chart: the first
// column becomes the categorical x axis and every numeric column a series.
// Cells that do not parse (e.g. DNF) become gaps. Columns named "m" (skyline
// cardinality context) and "k" are skipped as series. logY draws a
// logarithmic y axis, matching the paper's runtime figures.
func TableChart(t *Table, logY bool) (*plot.Chart, error) {
	if len(t.Header) < 2 || len(t.Rows) == 0 {
		return nil, fmt.Errorf("exp: table %q too small to chart", t.Title)
	}
	chart := &plot.Chart{Title: t.Title, LogY: logY}
	for _, row := range t.Rows {
		chart.XLabels = append(chart.XLabels, row[0])
	}
	for col := 1; col < len(t.Header); col++ {
		name := t.Header[col]
		if name == "m" || name == "k" {
			continue
		}
		series := plot.Series{Name: name, Y: make([]float64, len(t.Rows))}
		numeric := 0
		for r, row := range t.Rows {
			v, ok := parseCell(row, col)
			if !ok {
				series.Y[r] = math.NaN()
				continue
			}
			if logY && v <= 0 {
				series.Y[r] = math.NaN()
				continue
			}
			series.Y[r] = v
			numeric++
		}
		if numeric > 0 {
			chart.Series = append(chart.Series, series)
		}
	}
	if len(chart.Series) == 0 {
		return nil, fmt.Errorf("exp: table %q has no numeric series", t.Title)
	}
	return chart, nil
}

// parseCell extracts a float from a table cell, accepting plain numbers,
// percentages and byte counts.
func parseCell(row []string, col int) (float64, bool) {
	if col >= len(row) {
		return 0, false
	}
	s := strings.TrimSpace(row[col])
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "x")
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, true
	}
	return 0, false
}
