package exp

import (
	"bytes"
	"strings"
	"testing"
)

// tinyEnv returns an Env scaled for unit tests (fast, still exercising every
// code path).
func tinyEnv() *Env {
	e := NewEnv()
	e.Scale = 0.0005 // clamps to the 1000-point floor for most datasets
	return e
}

func TestScaled(t *testing.T) {
	e := NewEnv()
	e.Scale = 0.5
	if got := e.scaled(1000000); got != 500000 {
		t.Errorf("scaled = %d", got)
	}
	e.Scale = 0.0000001
	if got := e.scaled(1000000); got != 1000 {
		t.Errorf("floor broken: %d", got)
	}
	e.Scale = 10
	if got := e.scaled(1000); got != 1000 {
		t.Errorf("cap broken: %d", got)
	}
}

func TestLookup(t *testing.T) {
	if Lookup("table1") == nil || Lookup("fig10") == nil || Lookup("sparsity") == nil {
		t.Error("registry incomplete")
	}
	if Lookup("nope") != nil {
		t.Error("unknown id must return nil")
	}
	seen := map[string]bool{}
	for _, r := range Registry {
		if seen[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Description == "" || r.Run == nil {
			t.Errorf("incomplete runner %s", r.ID)
		}
	}
	// Every table and figure of the evaluation section must be covered.
	for _, id := range []string{"table1", "fig2", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "sparsity"} {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestPrepareCaches(t *testing.T) {
	e := tinyEnv()
	a, err := e.Prepare(kindIND, 100000, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Prepare(kindIND, 100000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Prepare must cache")
	}
	if len(a.Sky) == 0 || a.Tree.Len() != a.Data.Len() {
		t.Error("prepared bundle inconsistent")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Note:   "n",
		Header: []string{"a", "b"},
	}
	tab.AddRow(1, "x,y")
	var md, csv bytes.Buffer
	if err := tab.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "### T") || !strings.Contains(md.String(), "| 1") {
		t.Errorf("markdown output:\n%s", md.String())
	}
	if err := tab.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), `"x,y"`) {
		t.Errorf("csv quoting broken:\n%s", csv.String())
	}
}

func TestRunFig2(t *testing.T) {
	tabs, err := RunFig2(tinyEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 || len(tabs[0].Rows) != 2 {
		t.Fatal("fig2 shape")
	}
	// max-min must achieve a strictly larger minimum pairwise distance.
	if tabs[0].Rows[0][2] >= tabs[0].Rows[1][2] {
		t.Errorf("MSDP min %s not below MMDP min %s", tabs[0].Rows[0][2], tabs[0].Rows[1][2])
	}
}

func TestRunSparsity(t *testing.T) {
	tabs, err := RunSparsity(tinyEnv())
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows
	if len(rows) != 3 {
		t.Fatal("sparsity shape")
	}
	// Sparsity must increase with dimensionality, as in the paper's numbers.
	if !(rows[0][2] < rows[1][2] && rows[1][2] < rows[2][2]) {
		t.Errorf("sparsity not increasing: %v", rows)
	}
}

func TestRunTable1Tiny(t *testing.T) {
	tabs, err := RunTable1(tinyEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs[0].Rows) != 9 {
		t.Fatalf("table1 rows = %d, want 9", len(tabs[0].Rows))
	}
	// k=2 rows: dispersion diversity must be at least the coverage
	// algorithm's (it maximizes exactly that).
	for _, row := range tabs[0].Rows {
		if row[1] != "2" || row[2] == dnf {
			continue
		}
		if row[5] < row[3] {
			t.Errorf("%s k=2: dispersion diversity %s below coverage's %s", row[0], row[5], row[3])
		}
	}
}

func TestRunFig13Tiny(t *testing.T) {
	tabs, err := RunFig13(tinyEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 4 {
		t.Fatalf("fig13 tables = %d", len(tabs))
	}
	// Memory table: LSH rows must shrink (or stay equal) as the threshold
	// rises, and MH rows must be constant.
	mem := tabs[0]
	for _, row := range mem.Rows {
		if strings.HasPrefix(row[0], "MH") {
			if row[1] != row[2] || row[2] != row[3] || row[3] != row[4] {
				t.Errorf("MH memory row not constant: %v", row)
			}
		}
	}
}

func TestRunKSweepMemoized(t *testing.T) {
	e := tinyEnv()
	a, err := e.kSweep(kindIND, 50000, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.kSweep(kindIND, 50000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if &a == &b {
		t.Skip("maps compared by pointer identity elsewhere")
	}
	// Same content guaranteed by memoization: identical map instance.
	a["SG"][2] = kSweepCell{"x", "y"}
	if b["SG"][2].time != "x" {
		t.Error("kSweep must memoize the same instance")
	}
}

func TestRunFig8Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tabs, err := RunFig8(tinyEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("fig8 tables = %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 12 { // 3 dims x 4 signature sizes
			t.Fatalf("%s: rows = %d, want 12", tab.Title, len(tab.Rows))
		}
	}
}

func TestRunFig9Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tabs, err := RunFig9(tinyEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 4 {
		t.Fatalf("fig9 tables = %d", len(tabs))
	}
	if len(tabs[0].Rows) != 4 || len(tabs[2].Rows) != 4 {
		t.Fatal("fig9 row counts")
	}
}

func TestRunAblationTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tabs, err := RunAblation(tinyEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("ablation tables = %d", len(tabs))
	}
	if len(tabs[0].Rows) != 2 || len(tabs[1].Rows) != 10 {
		t.Fatalf("ablation row counts: %d, %d", len(tabs[0].Rows), len(tabs[1].Rows))
	}
}

func TestRunFig11And12ShareSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e := tinyEnv()
	// Keep it cheap: restrict to one family by running the sweep directly.
	if _, err := e.kSweep(kindFC, 2000, 4); err != nil {
		t.Fatal(err)
	}
	if len(e.memo) == 0 {
		t.Error("sweep not memoized")
	}
}

func TestRunParallelTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tabs, err := RunParallel(tinyEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs[0].Rows) != 8 { // 2 datasets x 4 worker counts
		t.Fatalf("parallel rows = %d", len(tabs[0].Rows))
	}
	// Single-worker rows show speedup 1.00x.
	if tabs[0].Rows[0][3] != "1.00x" {
		t.Errorf("baseline speedup = %s", tabs[0].Rows[0][3])
	}
}
