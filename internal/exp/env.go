// Package exp is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (Section 5). Each experiment is a named
// runner producing markdown tables with the same rows/series the paper
// reports; cmd/skybench drives them and bench_test.go wraps each in a
// testing.B benchmark.
//
// Absolute numbers are not expected to match the paper (different language,
// hardware and — via Env.Scale — cardinality); the shapes are: who wins, by
// roughly what factor, and where the crossovers fall. EXPERIMENTS.md records
// paper-versus-measured values per experiment.
package exp

import (
	"context"
	"fmt"
	"time"

	"skydiver/internal/core"
	"skydiver/internal/data"
	"skydiver/internal/pager"
	"skydiver/internal/rtree"
	"skydiver/internal/shard"
	"skydiver/internal/skyline"
)

// Env carries the execution parameters shared by all experiments, plus a
// cache of prepared datasets so sweeps reuse indexes and skylines.
type Env struct {
	// Scale multiplies every paper cardinality (default 0.02). Scale 1
	// reproduces the full 1M-7M/581K/364K sizes; expect hours, as the
	// paper's own runs took (its Figure 10 y-axes reach 10^6 seconds).
	Scale float64
	// Seed drives dataset generation and hashing.
	Seed int64
	// SGQueryCap aborts Simple-Greedy cells whose projected range-query
	// count (k·m) exceeds the cap; reported as DNF, as the paper itself
	// reports SG not completing on ANT 6D.
	SGQueryCap int
	// BFPairCap aborts Brute-Force cells whose pairwise-distance matrix
	// (m·(m-1)/2 range-query pairs) exceeds the cap; reported as DNF (the
	// paper's BF runs for k=5 "have not finished yet").
	BFPairCap int
	// Shards ≥ 2 runs the MH/LSH pipeline cells through the partitioned
	// execution layer: Prepare also builds a grid shard plan and the
	// signature pass folds per shard. BF/SG cells (no signatures) are
	// unaffected. 0/1 is the monolithic path.
	Shards int
	// Verbose emits progress lines through Logf.
	Logf func(format string, args ...any)

	cache map[string]*Prepared
	memo  map[string]any
}

// NewEnv returns an Env with the defaults used by cmd/skybench.
func NewEnv() *Env {
	return &Env{
		Scale:      0.02,
		Seed:       1,
		SGQueryCap: 150_000,
		BFPairCap:  500_000,
	}
}

func (e *Env) logf(format string, args ...any) {
	if e.Logf != nil {
		e.Logf(format, args...)
	}
}

// scaled returns the scaled cardinality for a paper cardinality, at least 1000.
func (e *Env) scaled(paperN int) int {
	n := int(float64(paperN) * e.Scale)
	if n < 1000 {
		n = 1000
	}
	if n > paperN {
		n = paperN
	}
	return n
}

// Prepared bundles a generated dataset with its aggregate R*-tree and
// skyline, ready for pipeline runs. Plan is non-nil only when Env.Shards
// requested partitioned execution.
type Prepared struct {
	Data *data.Dataset
	Tree *rtree.Tree
	Sky  []int
	Plan *core.ShardPlan
}

// Input converts to a core.Input.
func (p *Prepared) Input() core.Input {
	return core.Input{Data: p.Data, Sky: p.Sky, Tree: p.Tree, Plan: p.Plan}
}

// Dataset identifies one of the paper's workloads.
type datasetKind int

const (
	kindIND datasetKind = iota
	kindANT
	kindFC
	kindREC
)

func (k datasetKind) String() string {
	switch k {
	case kindIND:
		return "IND"
	case kindANT:
		return "ANT"
	case kindFC:
		return "FC"
	case kindREC:
		return "REC"
	default:
		return "?"
	}
}

// paper cardinalities (Table 4).
const (
	paperSyntheticN = 5_000_000 // default cardinality for IND/ANT
	paperFCN        = 581_012
	paperRECN       = 364_000
)

// generate builds the scaled dataset for a kind at the given cardinality
// and dimensionality.
func (e *Env) generate(kind datasetKind, paperN, dims int) (*data.Dataset, error) {
	n := e.scaled(paperN)
	switch kind {
	case kindIND:
		return data.Independent(n, dims, e.Seed), nil
	case kindANT:
		return data.Anticorrelated(n, dims, e.Seed), nil
	case kindFC:
		return data.SyntheticForestCover(n, e.Seed).Project(dims)
	case kindREC:
		return data.SyntheticRecipes(n, e.Seed).Project(dims)
	default:
		return nil, fmt.Errorf("exp: unknown dataset kind %d", int(kind))
	}
}

// Prepare generates (or fetches from cache) a dataset, its R*-tree and its
// skyline.
func (e *Env) Prepare(kind datasetKind, paperN, dims int) (*Prepared, error) {
	key := fmt.Sprintf("%v-%d-%d-%d-%f-%d", kind, paperN, dims, e.Seed, e.Scale, e.Shards)
	if e.cache == nil {
		e.cache = make(map[string]*Prepared)
	}
	if p, ok := e.cache[key]; ok {
		return p, nil
	}
	start := time.Now()
	ds, err := e.generate(kind, paperN, dims)
	if err != nil {
		return nil, err
	}
	tr, err := rtree.BulkLoad(ds)
	if err != nil {
		return nil, err
	}
	sky, err := skyline.ComputeBBS(tr)
	if err != nil {
		return nil, err
	}
	p := &Prepared{Data: ds, Tree: tr, Sky: sky}
	if e.Shards >= 2 {
		plan, err := core.BuildShardPlan(context.Background(), ds, shard.Grid{}, e.Shards, 0, nil)
		if err != nil {
			return nil, err
		}
		p.Plan = plan
	}
	e.cache[key] = p
	e.logf("prepared %s: n=%d d=%d m=%d pages=%d (%v)",
		ds.Name(), ds.Len(), ds.Dims(), len(sky), tr.NumPages(), time.Since(start).Round(time.Millisecond))
	return p, nil
}

// coldCache reopens the tree's buffer pool at the paper's 20% setting so
// each measured run starts from a comparable cache state.
func (p *Prepared) coldCache() {
	p.Tree.Reopen(pager.DefaultCacheFraction)
}

// seconds renders a duration in seconds with adaptive precision, matching
// the paper's second-based axes.
func seconds(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.4f", s)
	}
}

// dnf is the marker for cells whose projected cost exceeded a cap.
const dnf = "DNF"
